//! The per-channel memory controller: queue management, write drain,
//! refresh, relocation-job execution, and the event-horizon contract.
//!
//! Demand scheduling itself is delegated to the pluggable
//! [`SchedPolicy`](crate::scheduler::SchedPolicy) selected by
//! [`McConfig::sched`]; queue storage is the per-bank
//! [`IndexedQueue`](crate::queues::IndexedQueue); per-bank state (job
//! slots, horizon scratch) lives in [`BankState`](crate::bank::BankState).

use figaro_core::{CacheEngine, CacheStats, RowHammerMonitor};
use figaro_dram::{
    AddressMapping, BankAddr, Cycle, DramChannel, DramCommand, DramConfig, DramStats, MapKind,
    Region,
};

use crate::bank::BankState;
use crate::histogram::LatencyHistogram;
use crate::queues::{Entry, IndexedQueue};
use crate::request::{Completion, Request};
use crate::scheduler::{self, PrepAction, SchedPolicy, SchedPolicyKind};

/// Whether the `FIGARO_FREE_RELOC` debug ablation is active. Read once
/// per process (the controller consults it on the tick hot path and the
/// event-horizon path, which must agree).
///
/// Public because the ablation changes simulated results, so the result
/// cache must see it: the sim runner appends a `-freereloc` key suffix
/// whenever this returns `true`.
pub fn free_reloc_active() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::var_os("FIGARO_FREE_RELOC").is_some())
}

/// Controller configuration (the paper's Table 1 values by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Read queue capacity (paper: 64).
    pub read_queue_cap: usize,
    /// Write queue capacity (paper: 64).
    pub write_queue_cap: usize,
    /// Enter write-drain mode at this write-queue occupancy.
    pub wq_high: usize,
    /// Leave write-drain mode at this occupancy.
    pub wq_low: usize,
    /// Issue periodic refresh (disable only in micro-tests).
    pub enable_refresh: bool,
    /// Record per-row activation counts with this window (RowHammer
    /// analysis); `None` disables monitoring.
    pub activation_window: Option<Cycle>,
    /// Demand-scheduling policy (default: FR-FCFS, the paper's ladder).
    pub sched: SchedPolicyKind,
    /// Physical→DRAM address interleaving (default: the paper's
    /// `{row, rank, bankgroup, bank, channel, column}` bit slice). The
    /// system router must be built with the **same** kind — requests
    /// routed under one mapping and decoded under another would land on
    /// the wrong channel (asserted in [`MemoryController::enqueue`]).
    pub map: MapKind,
    /// Use the pre-refactor flat queue scans instead of the per-bank
    /// indexes. Selection is identical either way; this exists as the
    /// wall-clock baseline for the `sched_sweep` bench.
    pub flat_scan: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            read_queue_cap: 64,
            write_queue_cap: 64,
            wq_high: 40,
            wq_low: 16,
            enable_refresh: true,
            activation_window: None,
            sched: SchedPolicyKind::FrFcfs,
            map: MapKind::default(),
            flat_scan: false,
        }
    }
}

/// Request-level statistics (row-buffer locality, latency, throughput).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Column commands that found their row already open.
    pub row_hits: u64,
    /// Column commands that required only an activation (bank was closed).
    pub row_misses: u64,
    /// Column commands that required closing another row first.
    pub row_conflicts: u64,
    /// Reads served (including write-queue forwards).
    pub reads_served: u64,
    /// Writes drained to DRAM.
    pub writes_served: u64,
    /// Reads served directly from the write queue.
    pub forwarded: u64,
    /// Σ read latency in bus cycles (arrival → data).
    pub read_latency_sum: u64,
    /// Reads enqueued.
    pub enq_reads: u64,
    /// Writes enqueued.
    pub enq_writes: u64,
    /// Peak read-queue occupancy ever observed (sampled after each
    /// enqueue — occupancy only grows on enqueues). Merged across
    /// channels with `max`, so the merged figure is the worst channel's
    /// peak; per-channel values are surfaced by `RunStats::per_channel`.
    pub read_q_peak: u64,
    /// Peak write-queue occupancy ever observed (see
    /// [`McStats::read_q_peak`]).
    pub write_q_peak: u64,
    /// Per-read latency distribution (arrival → data, bus cycles) —
    /// same samples the sum above accumulates, bucketed for tail
    /// percentiles.
    pub read_latency_hist: LatencyHistogram,
}

impl McStats {
    /// DRAM row-buffer hit rate over demand column accesses (paper Fig. 10).
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Average read latency in bus cycles.
    #[must_use]
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_served == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_served as f64
        }
    }

    /// Books one served read's arrival→data latency into both the sum
    /// (the mean) and the distribution (the tail). Every read-serving
    /// path must go through here so the two stay consistent.
    pub fn note_read_latency(&mut self, lat: u64) {
        self.read_latency_sum += lat;
        self.read_latency_hist.record(lat);
    }

    /// Element-wise accumulation across channels (peak gauges merge
    /// with `max` — the worst channel, not a meaningless sum).
    pub fn merge_from(&mut self, o: &McStats) {
        self.read_q_peak = self.read_q_peak.max(o.read_q_peak);
        self.write_q_peak = self.write_q_peak.max(o.write_q_peak);
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        self.row_conflicts += o.row_conflicts;
        self.reads_served += o.reads_served;
        self.writes_served += o.writes_served;
        self.forwarded += o.forwarded;
        self.read_latency_sum += o.read_latency_sum;
        self.enq_reads += o.enq_reads;
        self.enq_writes += o.enq_writes;
        self.read_latency_hist.merge_from(&o.read_latency_hist);
    }
}

/// One channel's memory controller. See the crate docs for the module
/// map and the scheduling policy.
#[derive(Debug)]
pub struct MemoryController {
    cfg: McConfig,
    mapping: AddressMapping,
    channel: DramChannel,
    channel_id: u32,
    engine: Box<dyn CacheEngine>,
    policy: Box<dyn SchedPolicy>,
    read_q: IndexedQueue,
    write_q: IndexedQueue,
    drain_writes: bool,
    /// Write-drain watermarks as resolved by the policy (defaults to the
    /// configured `wq_high`/`wq_low`).
    wq_high: usize,
    wq_low: usize,
    next_refresh: Cycle,
    refresh_pending: bool,
    banks: Vec<BankState>,
    completions: Vec<Completion>,
    stats: McStats,
    monitor: Option<RowHammerMonitor>,
    /// Scratch listing the banks whose `BankAgg` is live (flat scans).
    agg_touched: Vec<u32>,
    /// Scratch for the flat-scan `pending_start_horizon` demand flags.
    demand_scratch: Vec<bool>,
    /// Memoized event horizon (`None` = stale). Invalidated by every
    /// [`MemoryController::tick`]; [`MemoryController::enqueue`] updates
    /// it incrementally instead of recomputing the full scan.
    horizon: Option<Option<Cycle>>,
    /// Event-trace sink (`FIGARO_TRACE`): job/drain spans and refresh
    /// instants, stamped in bus cycles. Result-neutral — never
    /// snapshotted, never consulted by any scheduling decision; every
    /// emit goes through the `probe!` guard (figlint FIG007).
    trace: Option<Box<figaro_telemetry::trace::ControllerTrace>>,
}

impl MemoryController {
    /// Builds a controller for channel `channel_id` of `dram` with the
    /// given cache `engine` (use [`figaro_core::NullEngine`] for `Base`).
    #[must_use]
    pub fn new(
        dram: &DramConfig,
        cfg: McConfig,
        channel_id: u32,
        engine: Box<dyn CacheEngine>,
    ) -> Self {
        let banks = dram.geometry.banks_per_channel() as usize;
        let policy = cfg.sched.build(banks);
        let (wq_high, wq_low) = policy.watermarks(cfg.wq_high, cfg.wq_low);
        Self {
            cfg,
            mapping: dram.address_mapping(cfg.map),
            channel: DramChannel::new(dram),
            channel_id,
            engine,
            policy,
            read_q: IndexedQueue::new(banks, cfg.read_queue_cap),
            write_q: IndexedQueue::new(banks, cfg.write_queue_cap),
            drain_writes: false,
            wq_high,
            wq_low,
            next_refresh: Cycle::from(dram.timing.refi),
            refresh_pending: false,
            banks: (0..banks as u32).map(|f| BankState::new(f, &dram.geometry)).collect(),
            completions: Vec::new(),
            stats: McStats::default(),
            monitor: cfg.activation_window.map(RowHammerMonitor::new),
            agg_touched: Vec::with_capacity(banks),
            demand_scratch: vec![false; banks],
            horizon: None,
            trace: None,
        }
    }

    /// Attaches an event-trace buffer recording the filtered
    /// categories (idempotent per run: replaces any previous buffer).
    pub fn enable_trace(&mut self, filter: figaro_telemetry::TraceFilter) {
        let banks = self.banks.len();
        self.trace = Some(Box::new(figaro_telemetry::trace::ControllerTrace::new(banks, filter)));
    }

    /// Detaches the event-trace buffer, closing any still-open spans
    /// at bus cycle `now`. `None` when tracing was never enabled.
    pub fn take_trace(&mut self, now: Cycle) -> Option<figaro_telemetry::TraceBuffer> {
        self.trace.take().map(|t| t.finish(now))
    }

    /// The scheduling policy in force.
    #[must_use]
    pub fn sched(&self) -> SchedPolicyKind {
        self.policy.kind()
    }

    /// Whether a request of the given kind can be accepted this cycle.
    #[must_use]
    pub fn can_accept(&self, is_write: bool) -> bool {
        if is_write {
            self.write_q.len() < self.cfg.write_queue_cap
        } else {
            self.read_q.len() < self.cfg.read_queue_cap
        }
    }

    /// Enqueues a demand request. The cache engine is consulted here: the
    /// request may be redirected to an in-DRAM cache row, and the engine
    /// may schedule a relocation job as a side effect.
    ///
    /// # Panics
    ///
    /// Panics if the corresponding queue is full
    /// (check [`MemoryController::can_accept`] first) or if the request's
    /// address does not belong to this channel.
    pub fn enqueue(&mut self, req: Request, now: Cycle) {
        assert!(self.can_accept(req.is_write), "queue full");
        let loc = self.mapping.decode(req.addr);
        assert_eq!(loc.channel, self.channel_id, "request routed to the wrong channel");
        let bank = loc.bank_addr();
        let flat = bank.flat_bank(self.mapping.geometry());
        let open = self.channel.open_row(bank);
        let target = self.engine.on_request(flat, loc.row, loc.col, req.is_write, open, now);
        let entry = Entry {
            req,
            bank,
            flat_bank: flat,
            serve_row: target.row,
            serve_col: target.col,
            saw_act: false,
            saw_conflict: false,
        };
        if req.is_write {
            self.stats.enq_writes += 1;
            self.write_q.push_back(entry);
            self.stats.write_q_peak = self.stats.write_q_peak.max(self.write_q.len() as u64);
            figaro_telemetry::probe!(self.trace, t => t.drain_update(now, self.write_q.len(), self.wq_high, self.wq_low));
            self.horizon_note_enqueue(&entry, now, true);
        } else {
            self.stats.enq_reads += 1;
            // Read-around-write forwarding: a queued write to the same
            // cache block satisfies the read without touching DRAM (the
            // comparison is block-aligned, so a sub-block-offset read
            // still matches; a block maps to one bank, so only that
            // bank's bucket is probed on the indexed path).
            let forwarded = if self.cfg.flat_scan {
                let block = Request::block_of(req.addr);
                self.write_q.iter().any(|(_, w)| Request::block_of(w.req.addr) == block)
            } else {
                self.write_q.bank_has_block(flat, req.addr)
            };
            if forwarded {
                self.stats.reads_served += 1;
                self.stats.forwarded += 1;
                // Same arrival→data convention as the scheduled path:
                // data comes back one cycle after the probe, so a read
                // that waited in a front-end queue since `arrival` books
                // that wait too (this used to be a constant 1 regardless
                // of queueing delay).
                self.stats.note_read_latency(now + 1 - req.arrival);
                self.completions.push(Completion {
                    id: req.id,
                    done_at: now + 1,
                    addr: req.addr,
                    core: req.core,
                });
                // No queue/timing change, but the engine consult may have
                // scheduled a job; the completion itself is surfaced by
                // `next_event_at`'s drain check.
                self.horizon_note_enqueue(&entry, now, false);
                return;
            }
            self.read_q.push_back(entry);
            self.stats.read_q_peak = self.stats.read_q_peak.max(self.read_q.len() as u64);
            self.horizon_note_enqueue(&entry, now, true);
        }
    }

    /// The write-drain decision the next tick will make, given queue
    /// lengths (the hysteresis flag itself only changes on ticks).
    fn effective_serve_writes(&self, read_len: usize, write_len: usize) -> bool {
        let drain = if write_len >= self.wq_high {
            true
        } else if write_len <= self.wq_low {
            false
        } else {
            self.drain_writes
        };
        drain || (read_len == 0 && write_len > 0)
    }

    /// Folds a just-enqueued request into the memoized horizon instead of
    /// invalidating it: the timing state is untouched by an enqueue, so
    /// existing candidates keep their times and only the new entry (plus a
    /// possibly just-scheduled relocation job) adds candidates. The added
    /// candidate is conservative — suppression by same-row entries, job
    /// setup or the scheduling policy can only defer the real action, and
    /// a too-early horizon merely costs a no-op tick. A flip of the active
    /// serve queue changes the candidate set wholesale, so that falls back
    /// to a recompute.
    fn horizon_note_enqueue(&mut self, e: &Entry, now: Cycle, queued: bool) {
        let Some(cached) = self.horizon else { return };
        let mut cand = Cycle::MAX;
        // The engine consult may have scheduled a pending relocation job.
        if self.banks[e.flat_bank as usize].job.is_none()
            && self.engine.has_pending_job(e.flat_bank)
        {
            cand = now;
        }
        if queued {
            let (r, w) = (self.read_q.len(), self.write_q.len());
            let (r0, w0) = if e.req.is_write { (r, w - 1) } else { (r - 1, w) };
            if self.effective_serve_writes(r0, w0) != self.effective_serve_writes(r, w) {
                self.horizon = None;
                return;
            }
            if e.req.is_write == self.effective_serve_writes(r, w) {
                let open = self.channel.open_row(e.bank);
                let cmd = if open == Some(e.serve_row) {
                    scheduler::column_cmd(e)
                } else if open.is_some() {
                    DramCommand::Precharge
                } else {
                    DramCommand::Activate { row: e.serve_row }
                };
                match self.channel.next_ready(e.bank, &cmd, now) {
                    Some(t) => cand = cand.min(t),
                    // Illegal for now (pinned subarray, must-precharge):
                    // recompute lazily.
                    None => {
                        self.horizon = None;
                        return;
                    }
                }
            }
        }
        if cand != Cycle::MAX {
            self.horizon = Some(Some(cached.map_or(cand, |h| h.min(cand))));
        }
    }

    /// Takes all completions produced so far.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh Vec per call; use `drain_completions_into` \
                with a reused buffer instead"
    )]
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Moves all completions into `out` (appended in production order),
    /// keeping both buffers' capacity — the allocation-free form for
    /// per-cycle callers.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    /// Whether any completions await collection.
    #[must_use]
    pub fn has_completions(&self) -> bool {
        !self.completions.is_empty()
    }

    /// True when no work remains (queues, active *and* pending relocation
    /// jobs, completions all empty).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty()
            && self.write_q.is_empty()
            && self.banks.iter().all(|b| b.job.is_none())
            && self.completions.is_empty()
            && !(0..self.banks.len()).any(|b| self.engine.has_pending_job(b as u32))
    }

    /// Request-level statistics.
    #[must_use]
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// DRAM command statistics.
    #[must_use]
    pub fn dram_stats(&self) -> &DramStats {
        self.channel.stats()
    }

    /// Cache-engine statistics.
    #[must_use]
    pub fn engine_stats(&self) -> CacheStats {
        self.engine.stats()
    }

    /// The RowHammer monitor, when enabled.
    #[must_use]
    pub fn activation_monitor(&self) -> Option<&RowHammerMonitor> {
        self.monitor.as_ref()
    }

    /// Read queue occupancy.
    #[must_use]
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Write queue occupancy.
    #[must_use]
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// Appends the controller's full live state to a snapshot word
    /// stream: drain/refresh flags, per-bank relocation jobs, pending
    /// completions, stats, both queues (exact slab images), the DRAM
    /// channel timing state, the cache engine and the scheduling policy.
    /// Derived members (mapping, watermarks, scratch, the horizon memo)
    /// are reconstructed on load.
    ///
    /// # Panics
    ///
    /// Panics when RowHammer monitoring is enabled — monitoring is a
    /// side-channel analysis that no cached/warm-start path enables, and
    /// its activation history is deliberately outside the snapshot format.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        assert!(self.monitor.is_none(), "snapshots do not cover RowHammer monitoring");
        out.push(u64::from(self.drain_writes));
        out.push(self.next_refresh);
        out.push(u64::from(self.refresh_pending));
        out.push(self.banks.len() as u64);
        for bank in &self.banks {
            match &bank.job {
                None => out.push(0),
                Some(job) => {
                    out.push(1);
                    job.save_state(out);
                }
            }
        }
        out.push(self.completions.len() as u64);
        for c in &self.completions {
            out.push(c.id);
            out.push(c.done_at);
            out.push(c.addr.0);
            out.push(u64::from(c.core));
        }
        out.push(self.stats.row_hits);
        out.push(self.stats.row_misses);
        out.push(self.stats.row_conflicts);
        out.push(self.stats.reads_served);
        out.push(self.stats.writes_served);
        out.push(self.stats.forwarded);
        out.push(self.stats.read_latency_sum);
        out.push(self.stats.enq_reads);
        out.push(self.stats.enq_writes);
        out.push(self.stats.read_q_peak);
        out.push(self.stats.write_q_peak);
        self.stats.read_latency_hist.save_state(out);
        self.read_q.save_state(out);
        self.write_q.save_state(out);
        self.channel.save_state(out);
        self.engine.save_state(out);
        self.policy.save_state(out);
    }

    /// Restores state saved by [`MemoryController::save_state`] into a
    /// controller built with the same configuration. The horizon memo is
    /// dropped (recomputed lazily on the next event query).
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream or a geometry mismatch.
    pub fn load_state(&mut self, src: &mut &[u64]) {
        assert!(self.monitor.is_none(), "snapshots do not cover RowHammer monitoring");
        self.drain_writes = crate::take(src) != 0;
        self.next_refresh = crate::take(src);
        self.refresh_pending = crate::take(src) != 0;
        let banks = crate::take(src) as usize;
        assert_eq!(banks, self.banks.len(), "snapshot controller bank-count mismatch");
        for bank in &mut self.banks {
            bank.job = if crate::take(src) == 0 {
                None
            } else {
                Some(figaro_core::RelocationJob::load_state(src))
            };
        }
        let n = crate::take(src) as usize;
        self.completions.clear();
        for _ in 0..n {
            self.completions.push(Completion {
                id: crate::take(src),
                done_at: crate::take(src),
                addr: figaro_dram::PhysAddr(crate::take(src)),
                core: crate::take(src) as u8,
            });
        }
        self.stats.row_hits = crate::take(src);
        self.stats.row_misses = crate::take(src);
        self.stats.row_conflicts = crate::take(src);
        self.stats.reads_served = crate::take(src);
        self.stats.writes_served = crate::take(src);
        self.stats.forwarded = crate::take(src);
        self.stats.read_latency_sum = crate::take(src);
        self.stats.enq_reads = crate::take(src);
        self.stats.enq_writes = crate::take(src);
        self.stats.read_q_peak = crate::take(src);
        self.stats.write_q_peak = crate::take(src);
        self.stats.read_latency_hist.load_state(src);
        self.read_q.load_state(src);
        self.write_q.load_state(src);
        self.channel.load_state(src);
        self.engine.load_state(src);
        self.policy.load_state(src);
        self.horizon = None;
    }

    fn issue(&mut self, bank: BankAddr, cmd: &DramCommand, now: Cycle) -> Cycle {
        let flat = bank.flat_bank(self.mapping.geometry());
        if let Some(m) = &mut self.monitor {
            match *cmd {
                DramCommand::Activate { row } | DramCommand::ActivateMerge { row } => {
                    m.record_act(flat, row, now);
                }
                DramCommand::LisaClone { src_row, dst_row } => {
                    m.record_act(flat, src_row, now);
                    m.record_act(flat, dst_row, now);
                }
                _ => {}
            }
        }
        self.policy.on_issue(flat, cmd);
        self.channel.issue(bank, cmd, now).completes_at
    }

    /// Advances the controller by one bus cycle, issuing at most one DRAM
    /// command.
    pub fn tick(&mut self, now: Cycle) {
        // Any tick may act, so the memoized horizon dies here. (An
        // event-driven caller only ticks at or past the horizon, so this
        // costs it exactly one recompute per action.)
        self.horizon = None;
        // Fast path: nothing queued, no jobs, no refresh due.
        if self.read_q.is_empty()
            && self.write_q.is_empty()
            && !self.refresh_pending
            && (!self.cfg.enable_refresh || now < self.next_refresh)
        {
            let any_job = self.banks.iter().any(|b| b.job.is_some())
                || (0..self.banks.len()).any(|b| self.engine.has_pending_job(b as u32));
            if !any_job {
                return;
            }
        }
        // Write-drain hysteresis; also drain opportunistically when idle.
        if self.write_q.len() >= self.wq_high {
            self.drain_writes = true;
        } else if self.write_q.len() <= self.wq_low {
            self.drain_writes = false;
        }
        let serve_writes =
            self.drain_writes || (self.read_q.is_empty() && !self.write_q.is_empty());

        if self.cfg.enable_refresh && now >= self.next_refresh {
            self.refresh_pending = true;
        }
        if self.refresh_pending {
            self.progress_refresh(now);
            return;
        }

        // Debug ablation (FIGARO_FREE_RELOC=1): train commands cost no
        // command-bus slot; used to attribute overhead between bus
        // pressure and relocation latency.
        if free_reloc_active() {
            for _ in 0..16 {
                if !self.try_issue_job_step(now, true) {
                    break;
                }
            }
            self.start_pending_jobs(now);
        }
        // Priority 1: ready demand column commands (policy pick).
        if self.try_issue_column(serve_writes, now) {
            return;
        }
        // Priority 2: RELOC trains — both in-flight (pinned) ones and
        // pin-forming first RELOCs whose source row is open. Issuing the
        // first RELOC immediately pins the source subarray, after which
        // demand may close the row and move on; losing this race would
        // force the job to re-activate its source row from scratch.
        if self.try_issue_job_step(now, true) {
            return;
        }
        // Priority 3: ACT/PRE for waiting demand requests (policy pick).
        if self.try_issue_demand_prep(serve_writes, now) {
            return;
        }
        // Priority 4: job setup (ensure-open activations, LISA clones,
        // pin-forming first RELOCs) on spare command slots.
        if self.try_issue_job_step(now, false) {
            return;
        }
        // Priority 5: start pending jobs and try their first step.
        self.start_pending_jobs(now);
        let _ = self.try_issue_job_step(now, false);
    }

    /// Conservative event horizon: the earliest bus cycle `>= from` at
    /// which [`MemoryController::tick`] could do anything observable —
    /// issue a DRAM command, start or retire a relocation job, or
    /// transition refresh state. `None` means the controller is idle and
    /// (with refresh disabled) stays idle until new work is enqueued.
    ///
    /// The contract the event-driven system kernel relies on: every tick
    /// strictly before the returned cycle is a **no-op** (the write-drain
    /// hysteresis flag it recomputes is a pure function of the — frozen —
    /// queue lengths, so deferring the recomputation is invisible). The
    /// horizon may be *earlier* than the first real action, which only
    /// costs a wasted no-op tick; it is never later. The horizon stays
    /// valid until the controller next ticks at it or accepts an enqueue.
    #[inline]
    #[must_use]
    pub fn next_event_at(&mut self, from: Cycle) -> Option<Cycle> {
        // Completions awaiting collection: the caller must drain now (the
        // forwarding path creates them without touching timing state, so
        // the memoized horizon stays valid for afterwards).
        if !self.completions.is_empty() {
            return Some(from);
        }
        if let Some(h) = self.horizon {
            return h.map(|t| t.max(from));
        }
        self.recompute_event_at(from)
    }

    /// Cold path of [`MemoryController::next_event_at`]: full scan.
    fn recompute_event_at(&mut self, from: Cycle) -> Option<Cycle> {
        let computed = self.compute_horizon(from);
        self.horizon = Some(computed);
        computed
    }

    /// The full horizon scan backing [`MemoryController::next_event_at`].
    fn compute_horizon(&mut self, from: Cycle) -> Option<Cycle> {
        let mut best = Cycle::MAX;
        if self.cfg.enable_refresh && !self.refresh_pending {
            best = best.min(self.next_refresh.max(from));
        }
        if self.refresh_pending {
            // tick() routes straight to `progress_refresh` and returns.
            // The refresh horizon is always finite (see `refresh_horizon`),
            // so a refresh-pending controller can never go to sleep forever.
            return Some(best.min(self.refresh_horizon(from)));
        }
        let any_job = self.banks.iter().any(|b| b.job.is_some());
        let any_pending = self.engine.has_any_pending_job(self.banks.len() as u32);
        if self.read_q.is_empty() && self.write_q.is_empty() && !any_job && !any_pending {
            return (best != Cycle::MAX).then_some(best);
        }
        if free_reloc_active() && (any_job || any_pending) {
            // The debug ablation issues free train steps on every tick.
            return Some(from);
        }
        // Write-drain hysteresis exactly as the next tick will compute it
        // (queue lengths cannot change between events).
        let serve_writes = self.effective_serve_writes(self.read_q.len(), self.write_q.len());
        let queue = if serve_writes { &self.write_q } else { &self.read_q };
        best = best.min(scheduler::queue_horizon(
            self.policy.as_ref(),
            queue,
            &mut self.banks,
            &mut self.agg_touched,
            &self.channel,
            from,
            self.cfg.flat_scan,
        ));
        if any_job {
            best = best.min(self.job_step_horizon(from));
        }
        if any_pending {
            best = best.min(self.pending_start_horizon(from));
        }
        if best == Cycle::MAX {
            // Work is queued but no candidate produced a finite time (every
            // relevant command is momentarily illegal — e.g. a bank mid-pin
            // whose state only a future tick resolves). Collapsing this to
            // "no event" would let the event kernel jump past the resolution
            // point and starve the queued work; retry next cycle instead.
            // A too-early horizon only costs a no-op tick.
            best = from + 1;
        }
        Some(best)
    }

    /// Event horizon of `progress_refresh`: active-job wind-down first,
    /// then the first open bank's precharge (scan order, matching the
    /// one-bank-per-tick drain), then the refresh command itself. Always
    /// finite: a `None` from `next_ready` (command momentarily illegal,
    /// e.g. a pinned bank blocking `Refresh`) degrades to a next-cycle
    /// retry rather than `Cycle::MAX` — collapsing it to MAX would put the
    /// controller to sleep with refresh pending and silently disable
    /// refresh for the rest of the run.
    fn refresh_horizon(&self, from: Cycle) -> Cycle {
        let retry = from + 1;
        if self.banks.iter().any(|b| b.job.is_some()) {
            let h = self.job_step_horizon(from);
            return if h == Cycle::MAX { retry } else { h };
        }
        for st in &self.banks {
            if self.channel.open_row(st.addr).is_some() || self.channel.must_precharge(st.addr) {
                return self
                    .channel
                    .next_ready(st.addr, &DramCommand::Precharge, from)
                    .unwrap_or(retry);
            }
        }
        let bank = BankAddr { rank: 0, bankgroup: 0, bank: 0 };
        self.channel.next_ready(bank, &DramCommand::Refresh, from).unwrap_or(retry)
    }

    /// Earliest cycle at which any active job's next command could issue
    /// (covers `try_issue_job_step` in both its trains-only and full
    /// forms — the priority split affects *which* action fires, not when
    /// the first one can).
    fn job_step_horizon(&self, from: Cycle) -> Cycle {
        let mut best = Cycle::MAX;
        for st in &self.banks {
            let Some(job) = st.job else { continue };
            let open = self.channel.open_row(st.addr);
            let must_pre = self.channel.must_precharge(st.addr);
            match job.peek(open, must_pre) {
                // Defensive retire path in `try_issue_job_step`.
                None => best = best.min(from),
                Some(cmd) => {
                    if let Some(t) = self.channel.next_ready(st.addr, &cmd, from) {
                        best = best.min(t);
                    }
                }
            }
        }
        best
    }

    /// Whether any demand request waits on `flat_bank` — O(1) on the
    /// per-bank indexes, a queue scan on the flat-scan baseline.
    fn bank_has_demand(&self, flat_bank: u32) -> bool {
        if self.cfg.flat_scan {
            self.read_q.iter().chain(self.write_q.iter()).any(|(_, e)| e.flat_bank == flat_bank)
        } else {
            self.read_q.bank_len(flat_bank) > 0 || self.write_q.bank_len(flat_bank) > 0
        }
    }

    /// `from` when `start_pending_jobs` would hand a pending job to a bank
    /// on its next opportunity, [`Cycle::MAX`] otherwise (the gating state
    /// — open rows and queued demand — only changes at events). The
    /// per-bank indexes answer the demand question in O(1); the flat-scan
    /// baseline rebuilds the per-bank flags with one queue pass.
    fn pending_start_horizon(&mut self, from: Cycle) -> Cycle {
        if self.cfg.flat_scan {
            self.demand_scratch.fill(false);
            for (_, e) in self.read_q.iter().chain(self.write_q.iter()) {
                self.demand_scratch[e.flat_bank as usize] = true;
            }
        }
        for bank_idx in 0..self.banks.len() {
            if self.banks[bank_idx].job.is_some() || !self.engine.has_pending_job(bank_idx as u32) {
                continue;
            }
            let bank = bank_idx as u32;
            let cheap = self
                .engine
                .next_job_source(bank)
                .is_some_and(|src| self.channel.open_row(self.banks[bank_idx].addr) == Some(src));
            let has_demand = if self.cfg.flat_scan {
                self.demand_scratch[bank_idx]
            } else {
                self.bank_has_demand(bank)
            };
            if cheap || !has_demand {
                return from;
            }
        }
        Cycle::MAX
    }

    /// A sound lower bound on the earliest bus cycle `>= from` at which
    /// this controller could **produce a read completion** — the only
    /// events a memory controller ever surfaces to the rest of the
    /// system (write serving, refresh and relocation steps are all
    /// channel-internal). The sharded parallel kernel uses this as its
    /// cross-shard lookahead window: every shard may be advanced
    /// privately up to the minimum of these bounds without any shard
    /// producing an externally visible event early.
    ///
    /// Soundness leans on register monotonicity: `DramChannel` timing
    /// registers (`next_rd`, `next_act`, rank/FAW constraints, …) only
    /// ever move forward when commands issue, so a `next_ready` probe
    /// against the *current* state lower-bounds every future issue of
    /// that command class on the bank. Per bank with queued reads:
    ///
    /// * an entry whose serve row is open (row hit): any read CAS obeys
    ///   `next_ready(Read)`;
    /// * otherwise the row must first be brought under the sense amps —
    ///   via PRE→ACT→CAS (bounded by `next_ready(Precharge)` plus the
    ///   *minimum-region* tRP and tRCD), via a fresh ACT on a closed
    ///   bank (bounded by `next_ready(Activate)` + min tRCD), or via a
    ///   relocation train whose merge re-activates a destination row
    ///   without a precharge (bounded by the first RELOC at `>= from`
    ///   plus the RELOC→merge-ready delay and the merge settle time,
    ///   which is a region tRCD);
    /// * a bank mid-relocation (active job or pinned subarray) falls
    ///   back to `from` + min tRCD — any serve of a not-yet-open row
    ///   still needs an ACT or merge at `>= from` and a tRCD-class
    ///   settle before its CAS.
    ///
    /// The caller must separately account for *backlogged* reads it has
    /// not enqueued yet: read-around-write forwarding completes one bus
    /// cycle after `enqueue`, so a read accepted mid-window could
    /// complete almost immediately (see the shard's bound in
    /// `figaro-sim`). Returns [`Cycle::MAX`] when no read is queued and
    /// no completion is pending.
    #[must_use]
    pub fn read_completion_horizon(&self, from: Cycle) -> Cycle {
        if !self.completions.is_empty() {
            return from;
        }
        if self.read_q.is_empty() {
            return Cycle::MAX;
        }
        let t = &self.channel.config().timing;
        let min_rcd = Cycle::from(t.rcd_of(Region::Fast).min(t.rcd_of(Region::Slow)));
        let min_rp = Cycle::from(t.rp_of(Region::Fast).min(t.rp_of(Region::Slow)));
        let min_reloc = Cycle::from(t.reloc.min(t.reloc_to_reloc));
        let mut best = Cycle::MAX;
        for flat in self.read_q.touched_banks() {
            let st = &self.banks[flat as usize];
            let bank = st.addr;
            let relocating = st.job.is_some() || self.channel.is_pinned(bank);
            let open = self.channel.open_row(bank);
            let must_pre = self.channel.must_precharge(bank);
            let (mut hit, mut miss) = (false, false);
            let mut any_row = 0;
            for (_, e) in self.read_q.iter_bank(flat) {
                if !must_pre && open == Some(e.serve_row) {
                    hit = true;
                } else {
                    miss = true;
                    any_row = e.serve_row;
                }
            }
            if hit {
                // `next_ready(Read)` is column-independent, so one probe
                // covers every hit entry on the bank. A `None` (command
                // momentarily illegal) degrades to `from`.
                let cand = self
                    .channel
                    .next_ready(bank, &DramCommand::Read { col: 0, auto_pre: false }, from)
                    .unwrap_or(from);
                best = best.min(cand);
            }
            if miss {
                let cand = if relocating {
                    from + min_rcd
                } else if open.is_some() || must_pre {
                    let pre_path = self
                        .channel
                        .next_ready(bank, &DramCommand::Precharge, from)
                        .map_or(from, |p| p + min_rp + min_rcd);
                    // A write accepted mid-window can schedule a job on
                    // the open row whose merge re-activates a serve row
                    // with no precharge in between.
                    let merge_path = from + min_reloc + min_rcd;
                    pre_path.min(merge_path)
                } else {
                    // Closed, unpinned: every serve path (demand ACT or
                    // a job's ensure-open ACT followed by its train)
                    // starts with an activate, whose bound is
                    // row-independent without a pinned subarray.
                    self.channel
                        .next_ready(bank, &DramCommand::Activate { row: any_row }, from)
                        .map_or(from, |a| a + min_rcd)
                };
                best = best.min(cand);
            }
            if best <= from {
                return from;
            }
        }
        best
    }

    fn progress_refresh(&mut self, now: Cycle) {
        // Let active jobs finish first (their banks cannot be interrupted).
        if self.banks.iter().any(|b| b.job.is_some()) {
            let _ = self.try_issue_job_step(now, false);
            return;
        }
        // Close any open bank, one per cycle.
        for i in 0..self.banks.len() {
            let bank = self.banks[i].addr;
            if self.channel.open_row(bank).is_some() || self.channel.must_precharge(bank) {
                if self.channel.can_issue(bank, &DramCommand::Precharge, now) {
                    self.issue(bank, &DramCommand::Precharge, now);
                    return;
                }
                return; // wait for tRAS etc.
            }
        }
        // All banks closed: refresh each rank (single-rank systems issue one).
        let bank = BankAddr { rank: 0, bankgroup: 0, bank: 0 };
        if self.channel.can_issue(bank, &DramCommand::Refresh, now) {
            self.issue(bank, &DramCommand::Refresh, now);
            figaro_telemetry::probe!(self.trace, t => t.note_refresh(now));
            let refi = Cycle::from(self.channel.config().timing.refi);
            self.next_refresh += refi;
            self.refresh_pending = false;
        }
    }

    fn classify_and_count(&mut self, entry: &Entry) {
        if entry.saw_conflict {
            self.stats.row_conflicts += 1;
        } else if entry.saw_act {
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
    }

    /// Priority 1: issue the policy's column-command pick, if any.
    fn try_issue_column(&mut self, serve_writes: bool, now: Cycle) -> bool {
        let queue = if serve_writes { &self.write_q } else { &self.read_q };
        let Some(id) = scheduler::pick_column(
            self.policy.as_ref(),
            queue,
            &self.channel,
            now,
            self.cfg.flat_scan,
        ) else {
            return false;
        };
        let entry = if serve_writes { self.write_q.remove(id) } else { self.read_q.remove(id) };
        if serve_writes {
            figaro_telemetry::probe!(self.trace, t => t.drain_update(now, self.write_q.len(), self.wq_high, self.wq_low));
        }
        let cmd = scheduler::column_cmd(&entry);
        let done = self.issue(entry.bank, &cmd, now);
        self.classify_and_count(&entry);
        if entry.req.is_write {
            self.stats.writes_served += 1;
        } else {
            self.stats.reads_served += 1;
            self.stats.note_read_latency(done - entry.req.arrival);
            self.completions.push(Completion {
                id: entry.req.id,
                done_at: done,
                addr: entry.req.addr,
                core: entry.req.core,
            });
        }
        true
    }

    /// Issues one step of an active job. With `trains_only`, only train
    /// commands (`RELOC`/merge) are considered — job setup (precharges,
    /// ensure-open activations, LISA clones) waits for spare slots.
    fn try_issue_job_step(&mut self, now: Cycle, trains_only: bool) -> bool {
        for bank_idx in 0..self.banks.len() {
            let Some(job) = self.banks[bank_idx].job else { continue };
            let bank = self.banks[bank_idx].addr;
            let open = self.channel.open_row(bank);
            let must_pre = self.channel.must_precharge(bank);
            if trains_only
                && !matches!(
                    job.peek(open, must_pre),
                    Some(
                        DramCommand::Reloc { .. }
                            | DramCommand::RelocBurst { .. }
                            | DramCommand::ActivateMerge { .. }
                    )
                )
            {
                continue;
            }
            let Some(cmd) = job.peek(open, must_pre) else {
                // Shouldn't happen (done jobs are retired on issue), but be safe.
                self.retire_job(bank_idx, now);
                continue;
            };
            if self.channel.can_issue(bank, &cmd, now) {
                self.issue(bank, &cmd, now);
                let job_mut = self.banks[bank_idx].job.as_mut().expect("job present");
                job_mut.on_issued(&cmd);
                if job_mut.is_done() {
                    self.retire_job(bank_idx, now);
                }
                return true;
            }
        }
        false
    }

    fn retire_job(&mut self, bank_idx: usize, now: Cycle) {
        if let Some(job) = self.banks[bank_idx].job.take() {
            self.engine.on_job_complete(bank_idx as u32, job.id, now);
            figaro_telemetry::probe!(self.trace, t => t.job_retire(bank_idx, now));
        }
    }

    fn start_pending_jobs(&mut self, now: Cycle) {
        for bank_idx in 0..self.banks.len() {
            if self.banks[bank_idx].job.is_some() || !self.engine.has_pending_job(bank_idx as u32) {
                continue;
            }
            // FIGARO relocations pin two subarrays but leave the rest of
            // the bank servable, so start them eagerly when their source
            // row is open (the paper's "relocate while the row serving
            // the miss is open") or as soon as the bank has no waiting
            // demand. LISA clones occupy the whole bank, so they only
            // start on an idle bank.
            let bank = bank_idx as u32;
            let cheap = self
                .engine
                .next_job_source(bank)
                .is_some_and(|src| self.channel.open_row(self.banks[bank_idx].addr) == Some(src));
            if cheap || !self.bank_has_demand(bank) {
                self.banks[bank_idx].job = self.engine.take_job(bank, now);
                if let Some(job) = &self.banks[bank_idx].job {
                    let id = job.id;
                    figaro_telemetry::probe!(self.trace, t => t.job_start(bank_idx, id, now));
                }
            }
        }
    }

    /// Priority 3: issue the policy's ACT/PRE pick, if any.
    fn try_issue_demand_prep(&mut self, serve_writes: bool, now: Cycle) -> bool {
        let decision = {
            let queue = if serve_writes { &self.write_q } else { &self.read_q };
            scheduler::pick_prep(
                self.policy.as_ref(),
                queue,
                &self.banks,
                &self.channel,
                now,
                self.cfg.flat_scan,
            )
        };
        match decision {
            Some(PrepAction::Pre(id)) => {
                let bank = {
                    let q = if serve_writes { &mut self.write_q } else { &mut self.read_q };
                    let e = q.entry_mut(id);
                    e.saw_conflict = true;
                    e.bank
                };
                self.issue(bank, &DramCommand::Precharge, now);
                true
            }
            Some(PrepAction::Act(id)) => {
                let (bank, row) = {
                    let q = if serve_writes { &mut self.write_q } else { &mut self.read_q };
                    let e = q.entry_mut(id);
                    e.saw_act = true;
                    (e.bank, e.serve_row)
                };
                self.issue(bank, &DramCommand::Activate { row }, now);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figaro_core::{FigCacheConfig, FigCacheEngine, NullEngine};
    use figaro_dram::{DramConfig, PhysAddr, SubarrayLayout};

    fn base_mc(enable_refresh: bool) -> MemoryController {
        let dram = DramConfig::ddr4_paper_default();
        let cfg = McConfig { enable_refresh, ..McConfig::default() };
        MemoryController::new(&dram, cfg, 0, Box::new(NullEngine::new()))
    }

    fn base_mc_with(cfg: McConfig) -> MemoryController {
        let dram = DramConfig::ddr4_paper_default();
        MemoryController::new(&dram, cfg, 0, Box::new(NullEngine::new()))
    }

    fn fig_mc() -> MemoryController {
        let dram = DramConfig {
            layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
            ..DramConfig::ddr4_paper_default()
        };
        let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
        let cfg = McConfig { enable_refresh: false, ..McConfig::default() };
        MemoryController::new(&dram, cfg, 0, Box::new(engine))
    }

    fn read(id: u64, addr: u64, now: Cycle) -> Request {
        Request { id, addr: PhysAddr(addr), is_write: false, core: 0, arrival: now }
    }

    fn write(id: u64, addr: u64, now: Cycle) -> Request {
        Request { id, addr: PhysAddr(addr), is_write: true, core: 0, arrival: now }
    }

    /// The allocation-free drain, wrapped for test convenience.
    fn take_completions(mc: &mut MemoryController) -> Vec<Completion> {
        let mut out = Vec::new();
        mc.drain_completions_into(&mut out);
        out
    }

    /// Ticks until `n` completions exist or `limit` cycles pass.
    fn run_until_completions(
        mc: &mut MemoryController,
        start: Cycle,
        n: usize,
        limit: Cycle,
    ) -> (Vec<Completion>, Cycle) {
        let mut done = Vec::new();
        let mut t = start;
        while done.len() < n && t < start + limit {
            mc.tick(t);
            mc.drain_completions_into(&mut done);
            t += 1;
        }
        (done, t)
    }

    #[test]
    fn single_read_completes_with_act_rd_latency() {
        let mut mc = base_mc(false);
        mc.enqueue(read(1, 0, 0), 0);
        let (done, _) = run_until_completions(&mut mc, 0, 1, 1000);
        assert_eq!(done.len(), 1);
        // ACT at 0 (first tick), RD at tRCD=11, data at 11 + CL + BL = 26.
        assert_eq!(done[0].done_at, 26);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn second_read_same_row_is_a_row_hit() {
        let mut mc = base_mc(false);
        mc.enqueue(read(1, 0, 0), 0);
        mc.enqueue(read(2, 64, 0), 0);
        let (done, _) = run_until_completions(&mut mc, 0, 2, 1000);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn conflicting_rows_count_a_conflict() {
        let mut mc = base_mc(false);
        // Same bank (bank field beyond column bits), different rows.
        let row_stride = 128 * 64 * 16; // one full row across all banks
        mc.enqueue(read(1, 0, 0), 0);
        let (_, t) = run_until_completions(&mut mc, 0, 1, 1000);
        mc.enqueue(read(2, row_stride, t), t);
        let (done, _) = run_until_completions(&mut mc, t, 1, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(mc.stats().row_conflicts, 1);
    }

    #[test]
    fn reads_to_different_banks_overlap() {
        let mut mc = base_mc(false);
        // Four reads, four different banks.
        for b in 0..4u64 {
            mc.enqueue(read(b, b * 128 * 64, 0), 0);
        }
        let (done, t) = run_until_completions(&mut mc, 0, 4, 1000);
        assert_eq!(done.len(), 4);
        // Bank-level parallelism: far faster than 4 serialized ACT+RD.
        assert!(t < 80, "four banks should overlap, took {t}");
    }

    #[test]
    fn write_then_read_forwards_from_write_queue() {
        let mut mc = base_mc(false);
        mc.enqueue(write(1, 4096, 0), 0);
        mc.enqueue(read(2, 4096, 1), 1);
        assert_eq!(mc.stats().forwarded, 1);
        let done = take_completions(&mut mc);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].done_at, 2);
    }

    #[test]
    fn forwarded_read_books_queueing_delay_not_a_constant() {
        // Regression: a write-forwarded read that spent N cycles queued
        // upstream (arrival stamp N cycles before the enqueue) must book
        // ~N latency under the same arrival→data convention as the
        // scheduled path — it used to book a constant 1.
        let n = 37u64;
        let mut mc = base_mc(false);
        mc.enqueue(write(1, 4096, 0), 0);
        // Read arrived at cycle 1 but only reaches the controller at 1+n.
        mc.enqueue(
            Request { id: 2, addr: PhysAddr(4096), is_write: false, core: 0, arrival: 1 },
            1 + n,
        );
        assert_eq!(mc.stats().forwarded, 1);
        assert_eq!(mc.stats().read_latency_sum, n + 1, "arrival→data, not constant 1");
        assert_eq!(mc.stats().read_latency_hist.count(), 1);
        assert_eq!(mc.stats().read_latency_hist.max(), n + 1);
    }

    #[test]
    fn sub_block_offset_read_still_forwards() {
        // Regression: forwarding compares block-aligned addresses, so a
        // read at a sub-block offset of a queued write's block must be
        // served from the write queue (previously the exact-address
        // comparison missed it and the read went to DRAM).
        for flat_scan in [false, true] {
            let cfg = McConfig { enable_refresh: false, flat_scan, ..McConfig::default() };
            let mut mc = base_mc_with(cfg);
            mc.enqueue(write(1, 4096, 0), 0);
            mc.enqueue(read(2, 4096 + 24, 1), 1);
            assert_eq!(mc.stats().forwarded, 1, "flat_scan={flat_scan}");
            let done = take_completions(&mut mc);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].id, 2);
            // A read one block over must NOT forward.
            mc.enqueue(read(3, 4096 + 64, 2), 2);
            assert_eq!(mc.stats().forwarded, 1, "adjacent block must not forward");
        }
    }

    #[test]
    fn writes_drain_when_reads_are_absent() {
        let mut mc = base_mc(false);
        for i in 0..4u64 {
            mc.enqueue(write(i, i * 64, 0), 0);
        }
        let mut t = 0;
        while mc.write_queue_len() > 0 && t < 2000 {
            mc.tick(t);
            t += 1;
        }
        assert_eq!(mc.write_queue_len(), 0);
        assert_eq!(mc.stats().writes_served, 4);
    }

    #[test]
    fn refresh_happens_and_blocks_progress() {
        let mut mc = base_mc(true);
        let refi = u64::from(DramConfig::ddr4_paper_default().timing.refi);
        let mut t = 0;
        // Run past one refresh interval with no traffic.
        while t < refi + 400 {
            mc.tick(t);
            t += 1;
        }
        assert_eq!(mc.dram_stats().refreshes, 1);
    }

    #[test]
    fn figcache_miss_spawns_relocation_and_next_access_hits_cache() {
        let mut mc = fig_mc();
        mc.enqueue(read(1, 0, 0), 0);
        let (done, t) = run_until_completions(&mut mc, 0, 1, 2000);
        assert_eq!(done.len(), 1);
        // Let the relocation job run to completion.
        let mut t = t;
        while !mc.is_idle() && t < 4000 {
            mc.tick(t);
            t += 1;
        }
        assert_eq!(mc.engine_stats().insertions, 1);
        assert_eq!(mc.dram_stats().relocs, 16);
        assert_eq!(mc.dram_stats().merges_fast, 1);
        // Second access to the same segment: engine reports a cache hit.
        mc.enqueue(read(2, 64, t), t);
        let (done2, _) = run_until_completions(&mut mc, t, 1, 2000);
        assert_eq!(done2.len(), 1);
        assert_eq!(mc.engine_stats().hits, 1);
        // The hit is served either from the fast cache row or - if the
        // source row is still open after the relocation - via the
        // open-row bypass.
        assert!(
            mc.dram_stats().activates_fast >= 1 || mc.engine_stats().hits_bypassed >= 1,
            "hit must come from the cache row or the open source row"
        );
    }

    #[test]
    fn row_hits_have_priority_over_relocation_steps() {
        let mut mc = fig_mc();
        // First read opens row 0 and triggers an insertion job.
        mc.enqueue(read(1, 0, 0), 0);
        let (_, t0) = run_until_completions(&mut mc, 0, 1, 2000);
        // Enqueue a burst of row hits while the job is relocating.
        for i in 0..8u64 {
            mc.enqueue(read(10 + i, 64 * (i + 2), t0), t0);
        }
        let (done, _) = run_until_completions(&mut mc, t0, 8, 4000);
        assert_eq!(done.len(), 8);
        // All 8 were served as row hits (the job never closed the row
        // before they issued).
        assert!(mc.stats().row_hits >= 8, "row hits = {}", mc.stats().row_hits);
    }

    #[test]
    fn is_idle_reflects_outstanding_work() {
        let mut mc = base_mc(false);
        assert!(mc.is_idle());
        mc.enqueue(read(1, 0, 0), 0);
        assert!(!mc.is_idle());
        let _ = run_until_completions(&mut mc, 0, 1, 1000);
        assert!(mc.is_idle());
    }

    #[test]
    fn activation_monitor_records_acts() {
        let dram = DramConfig::ddr4_paper_default();
        let cfg = McConfig {
            enable_refresh: false,
            activation_window: Some(1_000_000),
            ..McConfig::default()
        };
        let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(NullEngine::new()));
        mc.enqueue(read(1, 0, 0), 0);
        let _ = run_until_completions(&mut mc, 0, 1, 1000);
        let mon = mc.activation_monitor().unwrap();
        assert_eq!(mon.total_acts(), 1);
    }

    #[test]
    fn drain_completions_into_appends_and_keeps_buffers() {
        let mut mc = base_mc(false);
        mc.enqueue(read(1, 0, 0), 0);
        let mut t = 0;
        while !mc.has_completions() && t < 1000 {
            mc.tick(t);
            t += 1;
        }
        assert!(mc.has_completions());
        let mut out = vec![Completion { id: 99, done_at: 0, addr: PhysAddr(0), core: 0 }];
        mc.drain_completions_into(&mut out);
        assert_eq!(out.len(), 2, "append preserves existing elements");
        assert_eq!(out[1].id, 1);
        assert!(!mc.has_completions());
    }

    #[test]
    fn fcfs_serves_strictly_in_order() {
        // One bank, row 0 open, then: a conflicting request to row 1
        // followed by a fresh hit to row 0. FR-FCFS serves the younger
        // hit first; strict FCFS must serve the conflict first.
        let row_stride = 128 * 64 * 16;
        let order_for = |sched: SchedPolicyKind| {
            let cfg = McConfig { enable_refresh: false, sched, ..McConfig::default() };
            let mut mc = base_mc_with(cfg);
            mc.enqueue(read(1, 0, 0), 0);
            let (_, t) = run_until_completions(&mut mc, 0, 1, 1000);
            // Row 0 is open now. Conflict (row 1) before the hit (row 0).
            mc.enqueue(read(2, row_stride, t), t);
            mc.enqueue(read(3, 64, t + 1), t + 1);
            let (done, _) = run_until_completions(&mut mc, t + 2, 2, 2000);
            done.iter().map(|c| c.id).collect::<Vec<_>>()
        };
        assert_eq!(order_for(SchedPolicyKind::FrFcfs), vec![3, 2], "FR-FCFS reorders for the hit");
        assert_eq!(order_for(SchedPolicyKind::Fcfs), vec![2, 3], "FCFS must not reorder");
    }

    #[test]
    fn row_hit_cap_unblocks_a_starved_conflict() {
        // Row 0 open, one conflicting request (row 1) queued behind a
        // steady stream of row-0 hits. Plain FR-FCFS serves every hit
        // first; FrFcfsCap{2} must close the row after two hits and
        // serve the conflict before the stream ends.
        let row_stride = 128 * 64 * 16;
        let conflict_position = |sched: SchedPolicyKind| {
            let cfg = McConfig { enable_refresh: false, sched, ..McConfig::default() };
            let mut mc = base_mc_with(cfg);
            mc.enqueue(read(1, 0, 0), 0);
            let (_, t) = run_until_completions(&mut mc, 0, 1, 1000);
            mc.enqueue(read(100, row_stride, t), t); // the conflict
            for i in 0..8u64 {
                mc.enqueue(read(2 + i, 64 * (i + 1), t), t); // hits
            }
            let (done, _) = run_until_completions(&mut mc, t, 9, 4000);
            done.iter().position(|c| c.id == 100).expect("conflict must complete")
        };
        let frfcfs = conflict_position(SchedPolicyKind::FrFcfs);
        let capped = conflict_position(SchedPolicyKind::FrFcfsCap { cap: 2 });
        assert_eq!(frfcfs, 8, "FR-FCFS serves all 8 hits before the conflict");
        assert!(capped <= 2, "cap=2 must serve the conflict after at most 2 hits, got {capped}");
    }

    #[test]
    fn write_drain_policy_drains_at_its_own_watermark() {
        // Two writes + one read queued. The default watermarks (40/16)
        // never trigger a drain, so FR-FCFS serves the read first; a
        // WriteDrain{2,1} policy must drain the writes first.
        let first_served = |sched: SchedPolicyKind| {
            let cfg = McConfig { enable_refresh: false, sched, ..McConfig::default() };
            let mut mc = base_mc_with(cfg);
            mc.enqueue(write(1, 4096, 0), 0);
            mc.enqueue(write(2, 8192, 0), 0);
            mc.enqueue(read(3, 64 * 512, 0), 0);
            let mut t = 0;
            while mc.stats().reads_served == 0 && mc.stats().writes_served == 0 && t < 1000 {
                mc.tick(t);
                t += 1;
            }
            (mc.stats().reads_served, mc.stats().writes_served)
        };
        assert_eq!(first_served(SchedPolicyKind::FrFcfs), (1, 0), "default serves the read");
        assert_eq!(
            first_served(SchedPolicyKind::WriteDrain { high: 2, low: 1 }),
            (0, 1),
            "tuned watermarks must drain writes first"
        );
    }

    #[test]
    fn flat_scan_baseline_is_bit_identical_to_indexed() {
        // The flat-scan strategy exists only as a wall-clock baseline:
        // selection must be identical. Drive both variants through a
        // bursty FIGCache workload (jobs, conflicts, refresh) and demand
        // identical completions and statistics every cycle.
        let dram = DramConfig {
            layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
            ..DramConfig::ddr4_paper_default()
        };
        let mk = |flat_scan: bool| {
            let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
            let cfg = McConfig { flat_scan, ..McConfig::default() };
            MemoryController::new(&dram, cfg, 0, Box::new(engine))
        };
        let mut indexed = mk(false);
        let mut flat = mk(true);
        let mut id = 0u64;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for t in 0..40_000u64 {
            if t.is_multiple_of(23) && indexed.can_accept(false) && flat.can_accept(false) {
                let addr = (id * 7919) % 8192 * 64 + (id % 3) * 8;
                indexed.enqueue(read(id, addr, t), t);
                flat.enqueue(read(id, addr, t), t);
                id += 1;
            }
            if t.is_multiple_of(97) && indexed.can_accept(true) && flat.can_accept(true) {
                let addr = (id * 104_729) % 8192 * 64;
                indexed.enqueue(write(id, addr, t), t);
                flat.enqueue(write(id, addr, t), t);
                id += 1;
            }
            indexed.tick(t);
            flat.tick(t);
            a.clear();
            b.clear();
            indexed.drain_completions_into(&mut a);
            flat.drain_completions_into(&mut b);
            assert_eq!(a, b, "completions diverged at bus cycle {t}");
        }
        assert_eq!(indexed.stats(), flat.stats());
        assert_eq!(indexed.dram_stats(), flat.dram_stats());
        assert_eq!(indexed.engine_stats(), flat.engine_stats());
        assert!(indexed.stats().reads_served > 500, "workload must exercise the controller");
        assert!(indexed.dram_stats().relocs > 0, "relocation jobs must run");
    }

    #[test]
    fn next_event_at_is_never_in_the_past_and_skipped_ticks_are_noops() {
        // A FIGCache controller with refresh enabled exercises every event
        // source: demand queues, relocation jobs, and refresh transitions.
        // Every policy must uphold the horizon contract.
        let policies = [
            SchedPolicyKind::FrFcfs,
            SchedPolicyKind::Fcfs,
            SchedPolicyKind::FrFcfsCap { cap: 4 },
            SchedPolicyKind::WriteDrain { high: 48, low: 8 },
        ];
        for sched in policies {
            let dram = DramConfig {
                layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
                ..DramConfig::ddr4_paper_default()
            };
            let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
            let cfg = McConfig { sched, ..McConfig::default() };
            let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(engine));
            let snapshot = |mc: &MemoryController| {
                (
                    *mc.stats(),
                    *mc.dram_stats(),
                    mc.engine_stats(),
                    mc.read_queue_len(),
                    mc.write_queue_len(),
                )
            };
            let mut id = 0u64;
            for t in 0..30_000u64 {
                if t.is_multiple_of(37) && mc.can_accept(false) {
                    mc.enqueue(read(id, (id * 7919) % 4096 * 64, t), t);
                    id += 1;
                }
                if t.is_multiple_of(151) && mc.can_accept(true) {
                    mc.enqueue(write(id, (id * 104_729) % 4096 * 64, t), t);
                    id += 1;
                }
                let horizon = mc.next_event_at(t);
                if let Some(h) = horizon {
                    assert!(
                        h >= t,
                        "[{}] horizon {h} at bus cycle {t} lies in the past",
                        sched.label()
                    );
                }
                let before = snapshot(&mc);
                mc.tick(t);
                let drained = take_completions(&mut mc).len();
                if horizon.is_none_or(|h| h > t) {
                    assert_eq!(
                        snapshot(&mc),
                        before,
                        "[{}] tick before the horizon acted at {t}",
                        sched.label()
                    );
                    assert_eq!(
                        drained,
                        0,
                        "[{}] tick before the horizon completed a request at {t}",
                        sched.label()
                    );
                }
            }
            assert!(
                mc.stats().reads_served > 100,
                "[{}] the workload must exercise the controller",
                sched.label()
            );
            assert!(mc.dram_stats().refreshes > 0, "refresh must fire during the run");
            assert!(mc.dram_stats().relocs > 0, "relocation jobs must run");
        }
    }

    #[test]
    fn event_paced_ticking_matches_per_cycle_including_refresh() {
        // Regression for the refresh horizon: a `None` from
        // `next_ready(.., Refresh, ..)` used to collapse into `Cycle::MAX`,
        // which could put an event-paced controller to sleep with refresh
        // pending (silently disabling refresh for the rest of the run).
        // Drive two identical FIGCache controllers — one ticked every bus
        // cycle, one ticked only when its horizon says so — through a
        // bursty schedule that repeatedly blocks banks (relocation jobs in
        // flight) around the refresh deadline, and require bit-identical
        // stats plus actual refreshes.
        let dram = DramConfig {
            layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
            ..DramConfig::ddr4_paper_default()
        };
        let cfg = McConfig::default();
        let mk = || {
            let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
            MemoryController::new(&dram, cfg, 0, Box::new(engine))
        };
        let mut per_cycle = mk();
        let mut event_paced = mk();
        let refi = u64::from(dram.timing.refi);
        let mut id = 0u64;
        let horizon_end = 3 * refi + 2000;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for t in 0..horizon_end {
            // Bursts of same-bank conflicts shortly before each refresh
            // deadline, so jobs and open banks straddle the transition.
            let phase = t % refi;
            if phase > refi - 400 && t.is_multiple_of(13) && per_cycle.can_accept(false) {
                let addr = (id * 12_289) % 8192 * 64;
                per_cycle.enqueue(read(id, addr, t), t);
                assert!(event_paced.can_accept(false), "acceptance must agree at {t}");
                event_paced.enqueue(read(id, addr, t), t);
                id += 1;
            }
            per_cycle.tick(t);
            if event_paced.next_event_at(t).is_some_and(|h| h <= t) {
                event_paced.tick(t);
            }
            a.clear();
            b.clear();
            per_cycle.drain_completions_into(&mut a);
            event_paced.drain_completions_into(&mut b);
            assert_eq!(a, b, "completions diverged at bus cycle {t}");
        }
        assert_eq!(per_cycle.stats(), event_paced.stats());
        assert_eq!(per_cycle.dram_stats(), event_paced.dram_stats());
        assert_eq!(per_cycle.engine_stats(), event_paced.engine_stats());
        assert_eq!(per_cycle.dram_stats().refreshes, 3, "one refresh per elapsed tREFI");
        assert!(per_cycle.dram_stats().relocs > 0, "relocation jobs must run");
    }

    #[test]
    fn refresh_pending_horizon_is_always_finite() {
        // With refresh enabled the controller must never report "no
        // events" once the refresh deadline passed, whatever the bank
        // state — otherwise an event kernel would sleep through refresh.
        let mut mc = base_mc(true);
        let refi = u64::from(DramConfig::ddr4_paper_default().timing.refi);
        // Open a bank just before the deadline so the drain path (precharge
        // then refresh) engages.
        mc.enqueue(read(1, 0, refi - 2), refi - 2);
        for t in (refi - 2)..(refi + 400) {
            let h = mc.next_event_at(t);
            assert!(h.is_some(), "horizon vanished at {t} with refresh due");
            assert!(h.unwrap() >= t, "horizon in the past at {t}");
            mc.tick(t);
            let _ = take_completions(&mut mc);
        }
        assert_eq!(mc.dram_stats().refreshes, 1);
    }

    #[test]
    #[should_panic(expected = "queue full")]
    fn enqueue_past_capacity_panics() {
        let mut mc = base_mc(false);
        for i in 0..=64u64 {
            mc.enqueue(read(i, i * 64, 0), 0);
        }
    }
}
