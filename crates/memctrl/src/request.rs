//! Memory requests and completions exchanged between the cache hierarchy
//! and the memory controller.

use figaro_dram::{Cycle, PhysAddr};

/// Cache-block size of demand requests in bytes (the paper's 64 B
/// blocks). Addresses are compared at this granularity wherever two
/// requests are matched against each other (write forwarding).
pub const BLOCK_BYTES: u64 = 64;

/// A demand memory request at cache-block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned id echoed in the [`Completion`].
    pub id: u64,
    /// Block-aligned physical address.
    pub addr: PhysAddr,
    /// `true` for writebacks, `false` for fills/loads.
    pub is_write: bool,
    /// Originating core (for per-core statistics).
    pub core: u8,
    /// Bus cycle the request entered the controller.
    pub arrival: Cycle,
}

impl Request {
    /// `addr` truncated to its cache block ([`BLOCK_BYTES`] alignment).
    #[must_use]
    pub fn block_of(addr: PhysAddr) -> PhysAddr {
        PhysAddr(addr.0 & !(BLOCK_BYTES - 1))
    }
}

/// Completion notice for a read request (writes are posted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Bus cycle at which the data burst finishes.
    pub done_at: Cycle,
    /// The request's address.
    pub addr: PhysAddr,
    /// The request's originating core.
    pub core: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_is_plain_data() {
        let r = Request { id: 1, addr: PhysAddr(64), is_write: false, core: 2, arrival: 3 };
        let r2 = r;
        assert_eq!(r, r2);
    }
}
