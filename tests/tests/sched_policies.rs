//! Cross-crate proof obligations of the modular scheduling subsystem.
//!
//! 1. **Seed bit-identity**: the refactored FR-FCFS controller (per-bank
//!    indexed queues + pluggable policy) reproduces the pre-refactor
//!    monolith's `RunStats` bit for bit on the Figure 7/8 config set
//!    under both kernels — the hardcoded digests below were captured
//!    from `main` immediately before the refactor (regenerate with
//!    `cargo run --release --example golden_digest`).
//! 2. **Policy × kernel equivalence**: every scheduling policy keeps the
//!    event kernel bit-identical to the per-cycle reference.
//! 3. **Flat-scan equivalence**: the pre-refactor flat scans (kept as
//!    the `sched_sweep` wall-clock baseline) pick the same commands as
//!    the indexed scans, end to end.
//! 4. **Runner plumbing**: scenario-level policy overrides really reach
//!    the controller and never share cache entries with the default.

use proptest::prelude::*;

use figaro_sim::experiments::scheduler_sweep_with;
use figaro_sim::{
    ConfigKind, Kernel, RunStats, Runner, Scale, Scenario, ScenarioWorkload, SchedPolicyKind,
    System, SystemConfig,
};
use figaro_workloads::{app_profiles, generate_trace, profile_by_name, Trace};

/// The digest fields asserted against the pre-refactor goldens.
fn digest(s: &RunStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        s.cpu_cycles,
        s.mc.row_hits,
        s.mc.row_misses,
        s.mc.row_conflicts,
        s.mc.reads_served,
        s.mc.writes_served,
        s.mc.forwarded,
        s.mc.read_latency_sum,
        s.dram.relocs,
        s.dram.refreshes,
        s.cache.insertions,
    )
}

/// The deterministic multi-app run shape the goldens were captured on.
fn golden_run(kind: &ConfigKind, kernel: Kernel, cores: usize) -> RunStats {
    let apps = ["mcf", "lbm", "zeusmp", "libquantum"];
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let p = profile_by_name(apps[i % apps.len()]).unwrap();
            generate_trace(&p, 8_000, 7 + i as u64)
        })
        .collect();
    let insts = 12_000u64;
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) };
    let mut sys = System::new(cfg, traces, &vec![insts; cores]);
    sys.run(insts * 400)
}

/// One golden row of the multi-app shape: config label, kernel label,
/// cores, then the [`digest`] fields in order.
type GoldenRow =
    (&'static str, &'static str, usize, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64);

/// One golden row of the write-draining shape: config, kernel label,
/// then the [`digest`] fields in order.
type WriteGoldenRow =
    (ConfigKind, &'static str, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64);

#[test]
fn frfcfs_reproduces_the_pre_refactor_seed_bit_for_bit() {
    // (config label, kernel label, cores, cpu_cycles, row_hits,
    //  row_misses, row_conflicts, reads, writes, forwarded,
    //  read_latency_sum, relocs, refreshes, insertions) — captured on
    // the pre-refactor seed (PR 3 head).
    #[rustfmt::skip]
    let goldens: &[GoldenRow] = &[
        ("Base", "reference", 1, 55780, 474, 45, 1000, 1519, 0, 0, 131866, 0, 2, 0),
        ("Base", "reference", 4, 54808, 3629, 144, 1747, 5520, 0, 0, 434698, 0, 8, 0),
        ("Base", "event", 1, 55780, 474, 45, 1000, 1519, 0, 0, 131866, 0, 2, 0),
        ("Base", "event", 4, 54808, 3629, 144, 1747, 5520, 0, 0, 434698, 0, 8, 0),
        ("LISA-VILLA", "reference", 1, 56488, 459, 190, 868, 1517, 0, 0, 132967, 0, 2, 246),
        ("LISA-VILLA", "reference", 4, 56656, 3582, 462, 1472, 5516, 0, 0, 444187, 0, 8, 722),
        ("LISA-VILLA", "event", 1, 56488, 459, 190, 868, 1517, 0, 0, 132967, 0, 2, 246),
        ("LISA-VILLA", "event", 4, 56656, 3582, 462, 1472, 5516, 0, 0, 444187, 0, 8, 722),
        ("FIGCache-Slow", "reference", 1, 67116, 548, 82, 892, 1522, 0, 0, 153957, 13504, 2, 843),
        ("FIGCache-Slow", "reference", 4, 63584, 3742, 194, 1578, 5514, 0, 0, 486676, 26416, 8, 1649),
        ("FIGCache-Slow", "event", 1, 67116, 548, 82, 892, 1522, 0, 0, 153957, 13504, 2, 843),
        ("FIGCache-Slow", "event", 4, 63584, 3742, 194, 1578, 5514, 0, 0, 486676, 26416, 8, 1649),
        ("FIGCache-Fast", "reference", 1, 63752, 548, 87, 885, 1520, 0, 0, 147188, 13504, 2, 842),
        ("FIGCache-Fast", "reference", 4, 60264, 3746, 186, 1579, 5511, 0, 0, 472416, 26416, 8, 1650),
        ("FIGCache-Fast", "event", 1, 63752, 548, 87, 885, 1520, 0, 0, 147188, 13504, 2, 842),
        ("FIGCache-Fast", "event", 4, 60264, 3746, 186, 1579, 5511, 0, 0, 472416, 26416, 8, 1650),
        ("FIGCache-Ideal", "reference", 1, 56608, 451, 44, 1027, 1522, 0, 0, 132934, 0, 2, 852),
        ("FIGCache-Ideal", "reference", 4, 55336, 3454, 151, 1921, 5526, 0, 0, 434800, 0, 8, 1666),
        ("FIGCache-Ideal", "event", 1, 56608, 451, 44, 1027, 1522, 0, 0, 132934, 0, 2, 852),
        ("FIGCache-Ideal", "event", 4, 55336, 3454, 151, 1921, 5526, 0, 0, 434800, 0, 8, 1666),
        ("LL-DRAM", "reference", 1, 52612, 471, 39, 1009, 1519, 0, 0, 125161, 0, 2, 0),
        ("LL-DRAM", "reference", 4, 48704, 3629, 121, 1773, 5523, 0, 0, 417679, 0, 4, 0),
        ("LL-DRAM", "event", 1, 52612, 471, 39, 1009, 1519, 0, 0, 125161, 0, 2, 0),
        ("LL-DRAM", "event", 4, 48704, 3629, 121, 1773, 5523, 0, 0, 417679, 0, 4, 0),
    ];
    let mut kinds = vec![ConfigKind::Base];
    kinds.extend(ConfigKind::figure78_set());
    for &(label, kernel_label, cores, a, b, c, d, e, f, g, h, i, j, k) in goldens {
        let kind = kinds.iter().find(|x| x.label() == label).expect("golden label known");
        let kernel = if kernel_label == "event" { Kernel::Event } else { Kernel::Reference };
        let s = golden_run(kind, kernel, cores);
        assert_eq!(
            digest(&s),
            (a, b, c, d, e, f, g, h, i, j, k),
            "refactored FR-FCFS diverged from the seed: {label}/{kernel_label}/{cores}c"
        );
    }
}

/// Longer single-core mcf runs that actually drain writes (the same
/// extra goldens the digest example captures).
#[test]
fn frfcfs_reproduces_the_seed_on_write_draining_runs() {
    #[rustfmt::skip]
    let goldens: &[WriteGoldenRow] = &[
        (ConfigKind::Base, "reference", 232218, 2183, 142, 4163, 6488, 0, 0, 542198, 0, 9, 0),
        (ConfigKind::Base, "event", 232218, 2183, 142, 4163, 6488, 0, 0, 542198, 0, 9, 0),
        (ConfigKind::FigCacheFast, "reference", 244742, 2655, 224, 3610, 6489, 0, 0, 555386, 42416, 9, 2650),
        (ConfigKind::FigCacheFast, "event", 244742, 2655, 224, 3610, 6489, 0, 0, 555386, 42416, 9, 2650),
    ];
    for (kind, kernel_label, a, b, c, d, e, f, g, h, i, j, k) in goldens {
        let kernel = if *kernel_label == "event" { Kernel::Event } else { Kernel::Reference };
        let p = profile_by_name("mcf").unwrap();
        let trace = generate_trace(&p, 30_000, 42);
        let cfg = SystemConfig { kernel, ..SystemConfig::paper(1, kind.clone()) };
        let mut sys = System::new(cfg, vec![trace], &[60_000]);
        let s = sys.run(60_000 * 400);
        assert_eq!(
            digest(&s),
            (*a, *b, *c, *d, *e, *f, *g, *h, *i, *j, *k),
            "refactored FR-FCFS diverged from the seed: {}/{kernel_label}",
            kind.label()
        );
    }
}

#[test]
fn flat_scan_matches_indexed_queues_end_to_end() {
    // The flat-scan baseline must be behaviorally invisible: identical
    // RunStats on a backlog-saturated multi-core FIGCache system (the
    // shape whose queue scans the indexes accelerate).
    let run = |flat_scan: bool| {
        let apps = ["mcf", "com", "tigr", "mum"];
        let traces: Vec<Trace> = apps
            .iter()
            .enumerate()
            .map(|(i, n)| generate_trace(&profile_by_name(n).unwrap(), 8_000, 31 + i as u64))
            .collect();
        let mut cfg = SystemConfig::paper(4, ConfigKind::FigCacheFast);
        cfg.channels = 1; // every request contends for one controller
        cfg.mc.read_queue_cap = 4;
        cfg.mc.write_queue_cap = 4;
        cfg.mc.wq_high = 3;
        cfg.mc.wq_low = 1;
        cfg.mc.flat_scan = flat_scan;
        cfg.hierarchy.mshrs_per_core = 16;
        let mut sys = System::new(cfg, traces, &[10_000; 4]);
        sys.run(40_000_000)
    };
    let indexed = run(false);
    let flat = run(true);
    assert_eq!(indexed, flat, "flat-scan baseline diverged from the indexed queues");
    assert!(indexed.mc.enq_reads > 100, "workload must stress the queue");
}

#[test]
fn scenario_sched_override_reaches_the_controller_and_gets_its_own_cache_key() {
    let dir = std::env::temp_dir()
        .join(format!("figaro-cache-test-{}", std::process::id()))
        .join("sched");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = Runner::with_cache_dir(Scale::Tiny, dir.clone());
    let sc = |sched: SchedPolicyKind| {
        Scenario::new(
            "sched-key",
            ConfigKind::Base,
            ScenarioWorkload::Apps(vec![profile_by_name("mcf").unwrap()]),
        )
        .with_target_insts(12_000)
        .with_sched(sched)
    };
    let frfcfs = runner.run_scenario(&sc(SchedPolicyKind::FrFcfs));
    let fcfs = runner.run_scenario(&sc(SchedPolicyKind::Fcfs));
    assert_ne!(frfcfs, fcfs, "policies must not share cached results");
    assert!(
        fcfs.cpu_cycles > frfcfs.cpu_cycles,
        "strict FCFS must be slower than FR-FCFS on a row-local workload \
         ({} vs {} cycles)",
        fcfs.cpu_cycles,
        frfcfs.cpu_cycles
    );
    assert!(
        fcfs.row_hit_rate < frfcfs.row_hit_rate,
        "FCFS forfeits row-buffer locality ({} vs {})",
        fcfs.row_hit_rate,
        frfcfs.row_hit_rate
    );
    let _ = std::fs::remove_dir_all(dir.parent().unwrap());
}

#[test]
fn scheduler_sweep_tiny_grid_runs_and_exports_csv() {
    // The CI fast tier's scheduler-sweep smoke: the full policy x
    // mechanism grid on streamed mixes at a tiny instruction target,
    // with the CSV export the slow tier uploads as an artifact.
    let runner = Runner::uncached(Scale::Tiny);
    let fig = scheduler_sweep_with(&runner, Some(4_000));
    assert_eq!(fig.rows.len(), 8, "4 policies x 2 mechanisms");
    assert!(fig.columns.len() >= 4, "ipc + row-hit per mix");
    for (label, vals) in &fig.rows {
        assert!(vals.iter().all(|v| v.is_finite() && *v >= 0.0), "non-finite cell in row {label}");
        assert!(vals[0] > 0.0, "zero throughput in row {label}");
    }
    let csv = fig.to_csv();
    assert!(csv.lines().count() > 8, "csv must carry the grid");
    assert!(csv.contains("frfcfs / Base"));
    assert!(csv.contains("fcfs / FIGCache-Fast"));
}

/// Runs one policy/kernel combination on a deterministic seed mix.
fn policy_run(
    seed: u64,
    cores: usize,
    sched: SchedPolicyKind,
    kind: &ConfigKind,
    kernel: Kernel,
) -> RunStats {
    let profiles = app_profiles();
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let p = &profiles[(seed as usize + 7 * i) % profiles.len()];
            generate_trace(p, 6_000, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
        })
        .collect();
    let insts = 8_000u64;
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) }.with_sched(sched);
    let mut sys = System::new(cfg, traces, &vec![insts; cores]);
    sys.run(insts * 400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every scheduling policy preserves the event-kernel contract:
    /// random seed x policy x mechanism x 1-2 cores, bit-identical
    /// RunStats between the event and reference kernels.
    #[test]
    fn every_policy_preserves_kernel_equivalence(
        seed in 0u64..1_000_000,
        cores_log2 in 0u32..2,
        policy_idx in 0usize..4,
        kind_idx in 0usize..3,
    ) {
        let policies = [
            SchedPolicyKind::FrFcfs,
            SchedPolicyKind::Fcfs,
            SchedPolicyKind::FrFcfsCap { cap: 2 },
            SchedPolicyKind::WriteDrain { high: 8, low: 2 },
        ];
        let kinds = [ConfigKind::Base, ConfigKind::FigCacheFast, ConfigKind::LisaVilla];
        let cores = 1usize << cores_log2;
        let sched = policies[policy_idx];
        let kind = &kinds[kind_idx];
        let reference = policy_run(seed, cores, sched, kind, Kernel::Reference);
        let event = policy_run(seed, cores, sched, kind, Kernel::Event);
        prop_assert_eq!(
            &reference,
            &event,
            "RunStats diverged: seed={} cores={} sched={} kind={}",
            seed,
            cores,
            sched.label(),
            kind.label()
        );
        prop_assert!(reference.dram.reads > 0, "workload never reached DRAM");
    }
}
