//! Cross-crate proof obligation of the sharded parallel kernel: for
//! random seeds, core counts, channel counts, scheduler policies and
//! worker-thread counts (including one thread and more threads than
//! channels), [`Kernel::Parallel`]'s [`RunStats`] are **bit-identical**
//! to the serial event kernel's — which the `kernel_equivalence` suite
//! in turn pins to the per-cycle reference loop.

use proptest::prelude::*;

use figaro_sim::{ConfigKind, Kernel, RunStats, SchedPolicyKind, System, SystemConfig};
use figaro_workloads::{app_profiles, generate_trace, Trace};

/// Runs one system built from `(seed, cores, channels, sched)` under
/// `kernel` with `threads` parallel-kernel workers.
#[allow(clippy::too_many_arguments)]
fn run(
    seed: u64,
    cores: usize,
    channels: u32,
    kind: &ConfigKind,
    sched: SchedPolicyKind,
    kernel: Kernel,
    threads: usize,
    insts: u64,
) -> RunStats {
    let profiles = app_profiles();
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let p = &profiles[(seed as usize + 7 * i) % profiles.len()];
            generate_trace(p, 6_000, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
        })
        .collect();
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) }
        .with_channels(channels)
        .with_sched(sched)
        .with_threads(threads);
    let mut sys = System::new(cfg, traces, &vec![insts; cores]);
    sys.run(insts * 400)
}

/// The four scheduler policies under test.
fn sched_policies() -> [SchedPolicyKind; 4] {
    [
        SchedPolicyKind::FrFcfs,
        SchedPolicyKind::Fcfs,
        SchedPolicyKind::FrFcfsCap { cap: 4 },
        SchedPolicyKind::WriteDrain { high: 24, low: 8 },
    ]
}

/// A tiny deterministic instance of the property for CI's fast tier:
/// four channels, a worker per channel, the paper mechanism.
#[test]
fn parallel_kernel_matches_event_smoke() {
    let kind = ConfigKind::FigCacheFast;
    let event = run(3, 2, 4, &kind, SchedPolicyKind::FrFcfs, Kernel::Event, 1, 8_000);
    let parallel = run(3, 2, 4, &kind, SchedPolicyKind::FrFcfs, Kernel::Parallel, 4, 8_000);
    assert_eq!(event, parallel);
    assert!(event.dram.reads > 0, "workload never reached DRAM");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random seed x {Base, FIGCache-Fast} x four scheduler policies x
    /// 1/2/4/8 channels x worker threads in {1, 2, channels, channels+3}:
    /// the parallel kernel must agree bit-for-bit with the event kernel
    /// on the full statistics record.
    #[test]
    fn parallel_kernel_is_bit_identical_to_event(
        seed in 0u64..1_000_000,
        cores_log2 in 0u32..3,
        channels_log2 in 0u32..4,
        kind_idx in 0usize..2,
        sched_idx in 0usize..4,
        threads_sel in 0usize..4,
    ) {
        let cores = 1usize << cores_log2;
        let channels = 1u32 << channels_log2;
        let kind = if kind_idx == 0 { ConfigKind::Base } else { ConfigKind::FigCacheFast };
        let sched = sched_policies()[sched_idx];
        // One thread (inline epochs), two, one per channel, and an
        // oversubscribed request that `worker_threads` clamps down.
        let threads = [1, 2, channels as usize, channels as usize + 3][threads_sel];
        let insts = 8_000;
        let event = run(seed, cores, channels, &kind, sched, Kernel::Event, 1, insts);
        let parallel = run(seed, cores, channels, &kind, sched, Kernel::Parallel, threads, insts);
        prop_assert_eq!(
            &event,
            &parallel,
            "RunStats diverged: seed={} cores={} channels={} kind={} sched={} threads={}",
            seed,
            cores,
            channels,
            kind.label(),
            sched.label(),
            threads
        );
        prop_assert!(event.instructions.iter().all(|&i| i == insts));
        prop_assert!(event.dram.reads > 0, "workload never reached DRAM");
    }
}
