//! Cross-crate end-to-end tests, tiered by cost.
//!
//! * `fast_tier` — deterministic `Scale::Tiny` smoke runs over the full
//!   mechanism set, driven through the runner's parallel batch API.
//!   These run by default and keep `cargo test -q` under a minute.
//! * The remaining tests are the paper-shape assertions at
//!   `Scale::Small`: they need cache warmup the tiny scale does not
//!   provide and take a couple of minutes, so they are `#[ignore]`d by
//!   default — run them with
//!   `FIGARO_SLOW_TESTS=1 cargo test -q -- --include-ignored`.

use figaro_sim::{ConfigKind, Runner};
use figaro_tests::{slow_guard, slow_tier_scale, SLOW_HINT};
use figaro_workloads::{eight_core_mixes, profile_by_name, MixCategory};

fn runner() -> Runner {
    Runner::uncached(slow_tier_scale())
}

mod fast_tier {
    //! Default-run smoke tests at `Scale::Tiny`: every mechanism builds,
    //! runs, caches, and stays deterministic; the parallel batch runner
    //! is bit-identical to the serial loop.

    use std::sync::OnceLock;

    use figaro_sim::runner::RunSummary;
    use figaro_sim::{ConfigKind, Runner};
    use figaro_tests::fast_tier_scale;
    use figaro_workloads::{eight_core_mixes, profile_by_name, AppProfile, Mix, MixCategory};

    fn all_kinds() -> Vec<ConfigKind> {
        vec![
            ConfigKind::Base,
            ConfigKind::LisaVilla,
            ConfigKind::FigCacheSlow,
            ConfigKind::FigCacheFast,
            ConfigKind::FigCacheIdeal,
            ConfigKind::LlDram,
        ]
    }

    /// `(apps, kinds, results[app][kind])` of the shared tiny matrix.
    type TinyMatrix = (Vec<AppProfile>, Vec<ConfigKind>, Vec<Vec<RunSummary>>);

    /// The shared tiny matrix: one intensive and one non-intensive app
    /// across every mechanism, computed once per process through the
    /// parallel batch API.
    fn matrix() -> &'static TinyMatrix {
        static MATRIX: OnceLock<TinyMatrix> = OnceLock::new();
        MATRIX.get_or_init(|| {
            let apps = vec![profile_by_name("mcf").unwrap(), profile_by_name("sjeng").unwrap()];
            let kinds = all_kinds();
            let runner = Runner::uncached(fast_tier_scale());
            let m = runner.run_single_matrix(&apps, &kinds);
            (apps, kinds, m)
        })
    }

    /// The shared tiny mix smoke: one intensive mix under Base and
    /// FIGCache-Fast.
    fn mix_results() -> &'static (Mix, Vec<RunSummary>) {
        static MIX: OnceLock<(Mix, Vec<RunSummary>)> = OnceLock::new();
        MIX.get_or_init(|| {
            let mix = eight_core_mixes()
                .into_iter()
                .find(|m| m.category == MixCategory::Intensive100)
                .unwrap();
            let runner = Runner::uncached(fast_tier_scale());
            let jobs =
                vec![(mix.clone(), ConfigKind::Base), (mix.clone(), ConfigKind::FigCacheFast)];
            let r = runner.run_mix_batch(&jobs);
            (mix, r)
        })
    }

    #[test]
    fn every_mechanism_completes_with_sane_outputs() {
        let (apps, kinds, m) = matrix();
        for (a, app) in apps.iter().enumerate() {
            for (k, kind) in kinds.iter().enumerate() {
                let s = &m[a][k];
                let ctx = format!("{} under {}", app.name, kind.label());
                assert!(s.ipc[0] > 0.0, "{ctx}: zero IPC");
                assert!(s.cpu_cycles > 0, "{ctx}: zero cycles");
                assert!(s.energy_total() > 0.0, "{ctx}: zero energy");
                assert!(s.mpki[0].is_finite(), "{ctx}: bad MPKI");
                assert!(
                    (0.0..=1.0).contains(&s.row_hit_rate),
                    "{ctx}: row hit rate {} out of range",
                    s.row_hit_rate
                );
            }
        }
    }

    #[test]
    fn figcache_inserts_and_relocates_at_tiny_scale() {
        let (apps, kinds, m) = matrix();
        let mcf = apps.iter().position(|p| p.name == "mcf").unwrap();
        let fast = kinds.iter().position(|k| *k == ConfigKind::FigCacheFast).unwrap();
        let s = &m[mcf][fast];
        assert!(s.insertions > 0, "FIGCache-Fast must insert segments");
        assert!(s.relocs > 0, "insertions must issue RELOC trains");
        let base = kinds.iter().position(|k| *k == ConfigKind::Base).unwrap();
        assert_eq!(m[mcf][base].relocs, 0, "Base must never relocate");
        assert!(m[mcf][base].cache_hit_rate == 0.0, "Base has no in-DRAM cache");
    }

    #[test]
    fn lisa_villa_issues_clones_at_tiny_scale() {
        let (apps, kinds, m) = matrix();
        let mcf = apps.iter().position(|p| p.name == "mcf").unwrap();
        let lisa = kinds.iter().position(|k| *k == ConfigKind::LisaVilla).unwrap();
        assert!(m[mcf][lisa].lisa_clones > 0, "LISA-VILLA must clone rows");
        assert_eq!(m[mcf][lisa].relocs, 0, "LISA-VILLA never issues RELOC");
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_serial() {
        let (apps, kinds, m) = matrix();
        let runner = Runner::uncached(fast_tier_scale());
        // Spot-check the four corners against fresh serial runs.
        for (a, k) in
            [(0, 0), (0, kinds.len() - 1), (apps.len() - 1, 0), (apps.len() - 1, kinds.len() - 1)]
        {
            let serial = runner.run_single(&apps[a], kinds[k].clone());
            assert_eq!(m[a][k], serial, "{} under {}", apps[a].name, kinds[k].label());
        }
    }

    #[test]
    fn tiny_runs_are_deterministic() {
        let runner = Runner::uncached(fast_tier_scale());
        let p = profile_by_name("grep").unwrap();
        let a = runner.run_single(&p, ConfigKind::FigCacheFast);
        let b = runner.run_single(&p, ConfigKind::FigCacheFast);
        assert_eq!(a, b, "identical runs must be bit-identical");
    }

    #[test]
    fn eight_core_mix_smoke_and_weighted_speedup_computable() {
        let (mix, results) = mix_results();
        let runner = Runner::uncached(fast_tier_scale());
        let alone = runner.alone_ipc_batch(&mix.apps);
        assert!(alone.iter().all(|&v| v > 0.0), "alone IPCs must be positive");
        for s in results {
            assert_eq!(s.ipc.len(), 8, "eight cores reported");
            assert!(s.ipc.iter().all(|&v| v > 0.0));
            let ws = figaro_sim::metrics::weighted_speedup(&s.ipc, &alone);
            assert!(ws.is_finite() && ws > 0.0, "weighted speedup {ws} must be sane");
        }
    }
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn figcache_fast_beats_base_on_memory_intensive_apps() {
    if !slow_guard("figcache_fast_beats_base_on_memory_intensive_apps") {
        return;
    }
    let r = runner();
    for name in ["mcf", "GemsFDTD"] {
        let p = profile_by_name(name).unwrap();
        let base = r.run_single(&p, ConfigKind::Base);
        let fig = r.run_single(&p, ConfigKind::FigCacheFast);
        assert!(
            fig.ipc[0] > base.ipc[0] * 1.02,
            "{name}: FIGCache-Fast {:.4} must clearly beat Base {:.4}",
            fig.ipc[0],
            base.ipc[0]
        );
    }
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn ideal_relocation_bounds_real_relocation() {
    if !slow_guard("ideal_relocation_bounds_real_relocation") {
        return;
    }
    let r = runner();
    let p = profile_by_name("mcf").unwrap();
    let fast = r.run_single(&p, ConfigKind::FigCacheFast);
    let ideal = r.run_single(&p, ConfigKind::FigCacheIdeal);
    assert!(
        ideal.ipc[0] >= fast.ipc[0] * 0.99,
        "Ideal ({:.4}) must not lose to real relocation ({:.4})",
        ideal.ipc[0],
        fast.ipc[0]
    );
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn figcache_fast_beats_lisa_villa_on_intensive_apps() {
    if !slow_guard("figcache_fast_beats_lisa_villa_on_intensive_apps") {
        return;
    }
    let r = runner();
    let p = profile_by_name("GemsFDTD").unwrap();
    let lisa = r.run_single(&p, ConfigKind::LisaVilla);
    let fig = r.run_single(&p, ConfigKind::FigCacheFast);
    assert!(
        fig.ipc[0] > lisa.ipc[0],
        "paper Sec 8.1: FIGCache-Fast ({:.4}) outperforms LISA-VILLA ({:.4})",
        fig.ipc[0],
        lisa.ipc[0]
    );
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn figcache_raises_row_buffer_hit_rate() {
    if !slow_guard("figcache_raises_row_buffer_hit_rate") {
        return;
    }
    // Paper Fig. 10: the defining effect of segment co-location.
    let r = runner();
    let p = profile_by_name("mcf").unwrap();
    let base = r.run_single(&p, ConfigKind::Base);
    let fig = r.run_single(&p, ConfigKind::FigCacheFast);
    assert!(
        fig.row_hit_rate > base.row_hit_rate + 0.03,
        "row hit rate must rise: base {:.3} -> fig {:.3}",
        base.row_hit_rate,
        fig.row_hit_rate
    );
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn lisa_villa_does_not_change_row_hit_rate_much() {
    if !slow_guard("lisa_villa_does_not_change_row_hit_rate_much") {
        return;
    }
    // Paper Sec 8.1: whole-row caching cannot improve row locality.
    let r = runner();
    let p = profile_by_name("mcf").unwrap();
    let base = r.run_single(&p, ConfigKind::Base);
    let lisa = r.run_single(&p, ConfigKind::LisaVilla);
    assert!(
        (lisa.row_hit_rate - base.row_hit_rate).abs() < 0.08,
        "LISA-VILLA row hit rate {:.3} should track Base {:.3}",
        lisa.row_hit_rate,
        base.row_hit_rate
    );
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn intensity_classification_matches_table2() {
    if !slow_guard("intensity_classification_matches_table2") {
        return;
    }
    let r = runner();
    let apps = figaro_workloads::app_profiles();
    let jobs: Vec<_> = apps.iter().map(|p| (*p, ConfigKind::Base)).collect();
    for (p, s) in apps.iter().zip(r.run_single_batch(&jobs)) {
        assert_eq!(
            s.mpki[0] > 10.0,
            p.memory_intensive,
            "{}: measured MPKI {:.1} contradicts Table 2 class",
            p.name,
            s.mpki[0]
        );
    }
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn eight_core_mix_runs_and_figcache_wins_at_high_intensity() {
    if !slow_guard("eight_core_mix_runs_and_figcache_wins_at_high_intensity") {
        return;
    }
    let r = runner();
    let mixes = eight_core_mixes();
    let mix = mixes.iter().find(|m| m.category == MixCategory::Intensive100).unwrap();
    let base = r.run_mix(mix, ConfigKind::Base);
    let fig = r.run_mix(mix, ConfigKind::FigCacheFast);
    let alone = r.alone_ipc_batch(&mix.apps);
    let ws_base = figaro_sim::metrics::weighted_speedup(&base.ipc, &alone);
    let ws_fig = figaro_sim::metrics::weighted_speedup(&fig.ipc, &alone);
    assert!(
        ws_fig > ws_base * 1.03,
        "100%-intensive mix: FIGCache WS {ws_fig:.3} must beat Base WS {ws_base:.3}"
    );
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn energy_breakdown_is_consistent() {
    if !slow_guard("energy_breakdown_is_consistent") {
        return;
    }
    let r = runner();
    let p = profile_by_name("lbm").unwrap();
    let base = r.run_single(&p, ConfigKind::Base);
    let fig = r.run_single(&p, ConfigKind::FigCacheFast);
    assert!(base.energy_total() > 0.0);
    // Faster run + fewer ACT/PRE => FIGCache must not burn more energy.
    assert!(
        fig.energy_total() < base.energy_total() * 1.05,
        "fig energy {:.2e} vs base {:.2e}",
        fig.energy_total(),
        base.energy_total()
    );
}

#[test]
#[ignore = "slow paper-shape test: FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn small_scale_runs_are_deterministic() {
    if !slow_guard("small_scale_runs_are_deterministic") {
        return;
    }
    let r = runner();
    let p = profile_by_name("grep").unwrap();
    let a = r.run_single(&p, ConfigKind::FigCacheFast);
    let b = r.run_single(&p, ConfigKind::FigCacheFast);
    assert_eq!(a, b, "identical runs must be bit-identical");
}

/// The `SLOW_HINT` constant and the `#[ignore]` messages must stay in
/// sync — this is the only fast-tier use of the constant.
#[test]
fn slow_hint_matches_ignore_messages() {
    assert!(SLOW_HINT.contains("FIGARO_SLOW_TESTS=1"));
}
