//! Cross-crate integration tests: full systems, paper-shape assertions.
//!
//! These run at the `small` scale (the bench default): the paper-shape
//! orderings they assert need cache warmup that the tiny scale does not
//! provide. The suite takes a couple of minutes on a laptop.

use figaro_sim::runner::Scale;
use figaro_sim::{ConfigKind, Runner};
use figaro_workloads::{eight_core_mixes, profile_by_name, MixCategory};

fn runner() -> Runner {
    Runner::uncached(Scale::Small)
}

#[test]
fn figcache_fast_beats_base_on_memory_intensive_apps() {
    let r = runner();
    for name in ["mcf", "GemsFDTD"] {
        let p = profile_by_name(name).unwrap();
        let base = r.run_single(&p, ConfigKind::Base);
        let fig = r.run_single(&p, ConfigKind::FigCacheFast);
        assert!(
            fig.ipc[0] > base.ipc[0] * 1.02,
            "{name}: FIGCache-Fast {:.4} must clearly beat Base {:.4}",
            fig.ipc[0],
            base.ipc[0]
        );
    }
}

#[test]
fn ideal_relocation_bounds_real_relocation() {
    let r = runner();
    let p = profile_by_name("mcf").unwrap();
    let fast = r.run_single(&p, ConfigKind::FigCacheFast);
    let ideal = r.run_single(&p, ConfigKind::FigCacheIdeal);
    assert!(
        ideal.ipc[0] >= fast.ipc[0] * 0.99,
        "Ideal ({:.4}) must not lose to real relocation ({:.4})",
        ideal.ipc[0],
        fast.ipc[0]
    );
}

#[test]
fn figcache_fast_beats_lisa_villa_on_intensive_apps() {
    let r = runner();
    let p = profile_by_name("GemsFDTD").unwrap();
    let lisa = r.run_single(&p, ConfigKind::LisaVilla);
    let fig = r.run_single(&p, ConfigKind::FigCacheFast);
    assert!(
        fig.ipc[0] > lisa.ipc[0],
        "paper Sec 8.1: FIGCache-Fast ({:.4}) outperforms LISA-VILLA ({:.4})",
        fig.ipc[0],
        lisa.ipc[0]
    );
}

#[test]
fn figcache_raises_row_buffer_hit_rate() {
    // Paper Fig. 10: the defining effect of segment co-location.
    let r = runner();
    let p = profile_by_name("mcf").unwrap();
    let base = r.run_single(&p, ConfigKind::Base);
    let fig = r.run_single(&p, ConfigKind::FigCacheFast);
    assert!(
        fig.row_hit_rate > base.row_hit_rate + 0.03,
        "row hit rate must rise: base {:.3} -> fig {:.3}",
        base.row_hit_rate,
        fig.row_hit_rate
    );
}

#[test]
fn lisa_villa_does_not_change_row_hit_rate_much() {
    // Paper Sec 8.1: whole-row caching cannot improve row locality.
    let r = runner();
    let p = profile_by_name("mcf").unwrap();
    let base = r.run_single(&p, ConfigKind::Base);
    let lisa = r.run_single(&p, ConfigKind::LisaVilla);
    assert!(
        (lisa.row_hit_rate - base.row_hit_rate).abs() < 0.08,
        "LISA-VILLA row hit rate {:.3} should track Base {:.3}",
        lisa.row_hit_rate,
        base.row_hit_rate
    );
}

#[test]
fn intensity_classification_matches_table2() {
    let r = runner();
    for p in figaro_workloads::app_profiles() {
        let s = r.run_single(&p, ConfigKind::Base);
        assert_eq!(
            s.mpki[0] > 10.0,
            p.memory_intensive,
            "{}: measured MPKI {:.1} contradicts Table 2 class",
            p.name,
            s.mpki[0]
        );
    }
}

#[test]
fn eight_core_mix_runs_and_figcache_wins_at_high_intensity() {
    let r = runner();
    let mixes = eight_core_mixes();
    let mix = mixes.iter().find(|m| m.category == MixCategory::Intensive100).unwrap();
    let base = r.run_mix(mix, ConfigKind::Base);
    let fig = r.run_mix(mix, ConfigKind::FigCacheFast);
    let alone: Vec<f64> = mix.apps.iter().map(|p| r.alone_ipc(p)).collect();
    let ws_base = figaro_sim::metrics::weighted_speedup(&base.ipc, &alone);
    let ws_fig = figaro_sim::metrics::weighted_speedup(&fig.ipc, &alone);
    assert!(
        ws_fig > ws_base * 1.03,
        "100%-intensive mix: FIGCache WS {ws_fig:.3} must beat Base WS {ws_base:.3}"
    );
}

#[test]
fn energy_breakdown_is_consistent() {
    let r = runner();
    let p = profile_by_name("lbm").unwrap();
    let base = r.run_single(&p, ConfigKind::Base);
    let fig = r.run_single(&p, ConfigKind::FigCacheFast);
    assert!(base.energy_total() > 0.0);
    // Faster run + fewer ACT/PRE => FIGCache must not burn more energy.
    assert!(
        fig.energy_total() < base.energy_total() * 1.05,
        "fig energy {:.2e} vs base {:.2e}",
        fig.energy_total(),
        base.energy_total()
    );
}

#[test]
fn runs_are_deterministic() {
    let r = runner();
    let p = profile_by_name("grep").unwrap();
    let a = r.run_single(&p, ConfigKind::FigCacheFast);
    let b = r.run_single(&p, ConfigKind::FigCacheFast);
    assert_eq!(a, b, "identical runs must be bit-identical");
}
