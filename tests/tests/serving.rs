//! Request-level serving: open-loop arrival pacing, tail-latency
//! histograms, and the load sweep.
//!
//! Three proof obligations ride here:
//!
//! * the CI fast tier's serving smoke — one open-loop load point plus
//!   the tiny sweep grid, with sane percentile ordering and the
//!   truncation-WARNING plumbing observable in the figure notes;
//! * paced sources must not break the event kernel: wrapping every core
//!   in an [`ArrivalSchedule`] still yields bit-identical [`RunStats`]
//!   between the event and reference kernels;
//! * [`LatencyHistogram`] merging is a lossless monoid — commutative,
//!   associative, and equal to recording every sample into one
//!   histogram — which is what makes per-channel stats mergeable.

use proptest::prelude::*;

use figaro_memctrl::LatencyHistogram;
use figaro_sim::experiments::serving_sweep_with;
use figaro_sim::{
    ConfigKind, Kernel, RunStats, Runner, Scale, Scenario, ScenarioWorkload, System, SystemConfig,
};
use figaro_workloads::{
    app_profiles, generate_trace, profile_by_name, ArrivalKind, ArrivalSchedule, TraceSource,
};

#[test]
fn serving_smoke_one_load_point_has_sane_tail() {
    // The CI fast tier's serving smoke: a single moderate Poisson load
    // point through the full scenario path (arrival wrapper, histogram,
    // RunSummary percentiles).
    let runner = Runner::uncached(Scale::Tiny);
    let sc = Scenario::new(
        "serve-smoke",
        ConfigKind::FigCacheFast,
        ScenarioWorkload::Apps(vec![profile_by_name("mcf").expect("mcf profile exists"); 4]),
    )
    .with_channels(1)
    .with_arrival(ArrivalKind::Poisson { mean_gap: 64 })
    .with_target_insts(20_000);
    let s = runner.run_scenario(&sc);

    assert!(s.reads_served > 0, "paced run never reached DRAM");
    assert_eq!(s.truncated_cores, 0, "smoke load point must complete, not truncate");
    assert!(s.avg_read_latency > 0.0);
    // Percentiles are cumulative bucket floors: they must be ordered
    // and bracketed by the exact maximum.
    assert!(s.read_lat_p50 >= 1, "p50 of a DRAM read is at least a cycle");
    assert!(s.read_lat_p50 <= s.read_lat_p95);
    assert!(s.read_lat_p95 <= s.read_lat_p99);
    assert!(s.read_lat_p99 <= s.read_lat_p999);
    assert!(s.read_lat_p999 <= s.read_lat_max);
    // A bucket floor never overshoots the true value it stands for.
    assert!(s.read_lat_p999 <= s.read_lat_max && s.read_lat_max > 0);
}

#[test]
fn serving_sweep_tiny_grid_runs_and_exports_csv() {
    // The sweep the slow tier uploads as an artifact, shrunk to a tiny
    // memory-op budget per core.
    let runner = Runner::uncached(Scale::Tiny);
    let fig = serving_sweep_with(&runner, Some(100));
    assert_eq!(fig.rows.len(), 24, "2 mechanisms x 2 schedulers x 6 loads");
    for (label, vals) in &fig.rows {
        assert_eq!(vals.len(), 6, "offered/achieved/avg/p50/p99/p999 in row {label}");
        assert!(vals.iter().all(|v| v.is_finite() && *v >= 0.0), "bad cell in row {label}");
        assert!(vals[1] > 0.0, "no DRAM reads served at {label}");
        assert!(vals[5] >= vals[4], "p999 below p99 at {label}");
    }
    // Offered load must climb monotonically within each six-point
    // (mechanism, scheduler) block — that is the sweep's x-axis.
    for block in fig.rows.chunks(6) {
        for pair in block.windows(2) {
            assert!(pair[1].1[0] > pair[0].1[0], "offered load not increasing");
        }
    }
    let csv = fig.to_csv();
    assert!(csv.lines().count() > 24, "csv must carry the grid");
    assert!(csv.contains("Base / frfcfs @ poisson256"));
    assert!(csv.contains("FIGCache-Fast / fcfs @ poisson8"));
    // Truncation plumbing: every tiny point completes, so the WARNING
    // note must be absent; if one ever truncates, note_truncations
    // surfaces it here and this assertion points at the regression.
    assert!(
        !fig.notes.iter().any(|n| n.contains("WARNING")),
        "tiny serving grid unexpectedly truncated: {:?}",
        fig.notes
    );
    assert!(fig.notes.iter().any(|n| n.contains("bucket floors")), "error-bound note missing");
}

/// Runs `cores` paced copies of mixed profiles under `kernel`.
fn paced_run(
    seed: u64,
    cores: usize,
    kind: &ConfigKind,
    arrival: ArrivalKind,
    kernel: Kernel,
    insts: u64,
) -> RunStats {
    let profiles = app_profiles();
    let sources: Vec<Box<dyn TraceSource>> = (0..cores)
        .map(|i| {
            let p = &profiles[(seed as usize + 7 * i) % profiles.len()];
            let trace = generate_trace(p, 6_000, seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            Box::new(ArrivalSchedule::new(
                Box::new(trace.into_source()),
                arrival,
                seed ^ (i as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
            )) as Box<dyn TraceSource>
        })
        .collect();
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) };
    let mut sys = System::from_sources(cfg, sources, &vec![insts; cores]);
    sys.run(insts * 400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Open-loop pacing is a pure source transform, so the event kernel
    /// must stay bit-identical to the per-cycle reference under every
    /// arrival kind — fixed, light/heavy Poisson, and bursty on/off.
    #[test]
    fn paced_sources_keep_kernels_bit_identical(
        seed in 0u64..1_000_000,
        cores_log2 in 0u32..2,
        kind_idx in 0usize..2,
        arrival_idx in 0usize..4,
    ) {
        let cores = 1usize << cores_log2;
        let kinds = [ConfigKind::Base, ConfigKind::FigCacheFast];
        let kind = &kinds[kind_idx];
        let arrivals = [
            ArrivalKind::Fixed { gap: 3 },
            ArrivalKind::Poisson { mean_gap: 24 },
            ArrivalKind::Poisson { mean_gap: 4 },
            ArrivalKind::Bursty { gap_on: 1, burst_ops: 8, gap_idle: 512 },
        ];
        let arrival = arrivals[arrival_idx];
        let insts = 8_000;
        let reference = paced_run(seed, cores, kind, arrival, Kernel::Reference, insts);
        let event = paced_run(seed, cores, kind, arrival, Kernel::Event, insts);
        prop_assert_eq!(
            &reference,
            &event,
            "RunStats diverged: seed={} cores={} kind={} arrival={}",
            seed,
            cores,
            kind.label(),
            arrival.label()
        );
        prop_assert!(reference.instructions.iter().all(|&i| i == insts));
        prop_assert!(reference.mc.reads_served > 0, "paced workload never reached DRAM");
    }

    /// Merging histograms is commutative and equals recording all the
    /// samples into a single histogram (losslessness of the monoid).
    #[test]
    fn histogram_merge_commutes_and_is_lossless(
        a in proptest::collection::vec(0u64..2_000_000, 0..200),
        b in proptest::collection::vec(0u64..2_000_000, 0..200),
    ) {
        let build = |vals: &[u64]| {
            let mut h = LatencyHistogram::default();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha;
        ab.merge_from(&hb);
        let mut ba = hb;
        ba.merge_from(&ha);
        prop_assert_eq!(ab, ba, "merge is not commutative");
        let mut whole = ha;
        for &v in &b {
            whole.record(v);
        }
        prop_assert_eq!(ab, whole, "merge lost or moved samples");
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    /// Merge order must not matter across three shards — the per-channel
    /// reduction in `McStats::merge_from` folds left, but any tree must
    /// give the same histogram.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..2_000_000, 0..120),
        b in proptest::collection::vec(0u64..2_000_000, 0..120),
        c in proptest::collection::vec(0u64..2_000_000, 0..120),
    ) {
        let build = |vals: &[u64]| {
            let mut h = LatencyHistogram::default();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha;
        left.merge_from(&hb);
        left.merge_from(&hc);
        let mut right_tail = hb;
        right_tail.merge_from(&hc);
        let mut right = ha;
        right.merge_from(&right_tail);
        prop_assert_eq!(left, right, "merge is not associative");
    }
}
