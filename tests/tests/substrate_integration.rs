//! Integration tests of the substrates below the full system: controller ×
//! engine × DRAM interplay, functional data movement under the timing
//! engine, and the circuit/energy/area models' paper anchors.

use figaro_core::{FigCacheConfig, FigCacheEngine, LisaVillaConfig, LisaVillaEngine, NullEngine};
use figaro_dram::{
    AddressMapping, BankAddr, DataStore, DramChannel, DramCommand, DramConfig, PhysAddr,
    SubarrayLayout, TimingParams,
};
use figaro_energy::{AreaModel, DramEnergyModel};
use figaro_memctrl::{McConfig, MemoryController, Request};
use figaro_spice::{run_monte_carlo, RelocCircuit};

fn fig_dram() -> DramConfig {
    DramConfig {
        layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
        ..DramConfig::ddr4_paper_default()
    }
}

/// Number of completions drained this cycle (via the allocation-free
/// `drain_completions_into`; the allocating variant is deprecated).
fn drained_count(mc: &mut MemoryController) -> u64 {
    let mut buf = Vec::new();
    mc.drain_completions_into(&mut buf);
    buf.len() as u64
}

/// Drives a controller until idle, bounded.
fn drain(mc: &mut MemoryController, start: u64, bound: u64) -> u64 {
    let mut now = start;
    while !mc.is_idle() && now < start + bound {
        mc.tick(now);
        let _ = drained_count(mc);
        now += 1;
    }
    assert!(mc.is_idle(), "controller must drain");
    now
}

#[test]
fn controller_drives_full_relocation_and_redirects_hits() {
    let dram = fig_dram();
    let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
    let cfg = McConfig { enable_refresh: false, ..McConfig::default() };
    let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(engine));
    // Miss: triggers a compound relocation.
    mc.enqueue(Request { id: 1, addr: PhysAddr(0), is_write: false, core: 0, arrival: 0 }, 0);
    let now = drain(&mut mc, 0, 5000);
    assert_eq!(mc.engine_stats().insertions, 1);
    assert_eq!(mc.dram_stats().relocs, 16);
    assert_eq!(mc.dram_stats().merges_fast, 1);
    // Re-access every block of the cached segment.
    for (i, col) in (0..16u64).enumerate() {
        mc.enqueue(
            Request {
                id: 10 + i as u64,
                addr: PhysAddr(col * 64),
                is_write: false,
                core: 0,
                arrival: now,
            },
            now,
        );
    }
    drain(&mut mc, now, 5000);
    assert_eq!(mc.engine_stats().hits, 16);
}

#[test]
fn relocation_concurrent_with_demand_to_other_subarrays() {
    // A pinned train must not block an unrelated row of the same bank.
    let dram = fig_dram();
    let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
    let cfg = McConfig { enable_refresh: false, ..McConfig::default() };
    let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(engine));
    let same_bank_other_subarray = 128 * 64 * 16 * 100u64; // row 100, bank 0
    mc.enqueue(Request { id: 1, addr: PhysAddr(0), is_write: false, core: 0, arrival: 0 }, 0);
    mc.enqueue(
        Request {
            id: 2,
            addr: PhysAddr(same_bank_other_subarray),
            is_write: false,
            core: 0,
            arrival: 1,
        },
        1,
    );
    let mut now = 1;
    let mut done = Vec::new();
    while done.len() < 2 && now < 4000 {
        mc.tick(now);
        mc.drain_completions_into(&mut done);
        now += 1;
    }
    assert_eq!(done.len(), 2);
    // The second read must complete well before a serialized train+demand
    // sequence would allow (ACT by 30 + pin overlap).
    assert!(done[1].done_at < 120, "overlapped demand finished at {}", done[1].done_at);
    drain(&mut mc, now, 5000);
}

#[test]
fn lisa_controller_path_clones_rows() {
    let dram = DramConfig {
        layout: SubarrayLayout::homogeneous(64, 512).with_interleaved_fast(16, 32),
        ..DramConfig::ddr4_paper_default()
    };
    let engine = LisaVillaEngine::new(&dram, &LisaVillaConfig::paper_default(), 16);
    let cfg = McConfig { enable_refresh: false, ..McConfig::default() };
    let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(engine));
    // Two misses to the same row cross the hot-row threshold.
    mc.enqueue(Request { id: 1, addr: PhysAddr(0), is_write: false, core: 0, arrival: 0 }, 0);
    let now = drain(&mut mc, 0, 5000);
    mc.enqueue(Request { id: 2, addr: PhysAddr(64), is_write: false, core: 0, arrival: now }, now);
    let now = drain(&mut mc, now, 5000);
    assert_eq!(mc.dram_stats().lisa_clones, 1);
    mc.enqueue(Request { id: 3, addr: PhysAddr(128), is_write: false, core: 0, arrival: now }, now);
    drain(&mut mc, now, 5000);
    assert_eq!(mc.engine_stats().hits, 1);
    assert!(mc.dram_stats().activates_fast >= 1, "hit served from the fast cache row");
}

#[test]
fn functional_segment_relocation_moves_every_byte() {
    // Timing engine + data store together: a full 16-block segment copy
    // with unaligned placement, validated byte-for-byte.
    let config = fig_dram();
    let mut channel = DramChannel::new(&config);
    let mut data = DataStore::new(&config.geometry);
    let layout = config.layout;
    let bank = BankAddr { rank: 0, bankgroup: 0, bank: 0 };
    let src_row = 42;
    let dst_row = layout.fast_row_base(0); // first cache row
    let pattern: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 253) as u8).collect();
    data.store_row(0, src_row, &pattern);

    let mut now = 0;
    channel.issue(bank, &DramCommand::Activate { row: src_row }, now);
    data.activate(&layout, 0, src_row);
    for i in 0..16u32 {
        let cmd = DramCommand::Reloc { src_col: 16 + i, dst_subarray: 64, dst_col: 32 + i };
        now = channel.earliest_issue(bank, &cmd, now).max(now);
        channel.issue(bank, &cmd, now);
        data.reloc(&layout, 0, src_row, 16 + i, 64, 32 + i);
    }
    let merge = DramCommand::ActivateMerge { row: dst_row };
    now = channel.earliest_issue(bank, &merge, now).max(now);
    channel.issue(bank, &merge, now);
    data.activate_merge(&layout, 0, dst_row);

    let dst = data.row(0, dst_row);
    assert_eq!(&dst[32 * 64..48 * 64], &pattern[16 * 64..32 * 64], "segment bytes must match");
    assert!(dst[..32 * 64].iter().all(|&b| b == 0), "untouched columns stay zero");
    assert_eq!(channel.stats().relocs, 16);
}

#[test]
fn reloc_timing_anchor_matches_paper() {
    // One-column relocation into a closed bank: 63.5 ns (Sec. 4.2).
    let t = TimingParams::ddr4_1600();
    let ns = t.cycles_to_ns(u64::from(t.ras + t.reloc + t.rcd + t.rp));
    assert!((ns - 63.5).abs() < 1.5, "{ns} ns");
    // Circuit model: worst case near 0.57 ns, guardbanded near 1 ns.
    let mc = run_monte_carlo(&RelocCircuit::paper_default(), 500, 0.05, 7);
    assert!(mc.all_correct);
    assert!(mc.worst_ns > 0.4 && mc.worst_ns < 0.7);
    // Energy model: one-block relocation within the paper's order (0.03 uJ).
    let nj = DramEnergyModel::ddr4_1600().one_block_relocation_nj();
    assert!(nj > 5.0 && nj < 60.0);
}

#[test]
fn area_anchors_match_paper() {
    let r = AreaModel::paper_default().paper_report();
    assert!(r.figaro_chip_overhead < 0.003);
    assert!((r.figcache_fast_overhead - 0.007).abs() < 0.001);
    assert!((r.lisa_villa_overhead - 0.056).abs() < 0.002);
    assert!(r.fts.total_kib > 24.0 && r.fts.total_kib < 27.0);
}

#[test]
fn refresh_interacts_safely_with_relocation_traffic() {
    // Refresh must wait for in-flight jobs and then fire; the system
    // keeps making progress around it.
    let dram = fig_dram();
    let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
    let cfg = McConfig { enable_refresh: true, ..McConfig::default() };
    let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(engine));
    let mapping = AddressMapping::new(dram.geometry);
    let mut id = 0u64;
    let mut completed = 0u64;
    for now in 0..40_000u64 {
        if now % 37 == 0 && mc.can_accept(false) {
            let addr = PhysAddr((id * 131) % (1 << 30) * 64);
            let loc = mapping.decode(addr);
            assert_eq!(loc.channel, 0);
            mc.enqueue(
                Request { id, addr, is_write: id.is_multiple_of(5), core: 0, arrival: now },
                now,
            );
            id += 1;
        }
        mc.tick(now);
        completed += drained_count(&mut mc);
    }
    assert!(mc.dram_stats().refreshes >= 5, "refreshes: {}", mc.dram_stats().refreshes);
    assert!(completed > 500, "reads completed: {completed}");
    assert!(mc.dram_stats().relocs > 0);
}

#[test]
fn null_engine_base_system_issues_no_figaro_commands() {
    let dram = DramConfig::ddr4_paper_default();
    let cfg = McConfig { enable_refresh: false, ..McConfig::default() };
    let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(NullEngine::new()));
    for i in 0..32u64 {
        mc.enqueue(
            Request { id: i, addr: PhysAddr(i * 8192 * 3), is_write: false, core: 0, arrival: 0 },
            0,
        );
    }
    drain(&mut mc, 0, 20_000);
    assert_eq!(mc.dram_stats().relocs, 0);
    assert_eq!(mc.dram_stats().merges + mc.dram_stats().merges_fast, 0);
    assert_eq!(mc.dram_stats().lisa_clones, 0);
    assert_eq!(mc.stats().reads_served, 32);
}
