//! Cross-crate tests of the streaming workload & scenario subsystem.
//!
//! Fast tier (default): a tiny streaming-trace scenario end to end —
//! generator-fed cores, a record→replay round trip over the on-disk
//! trace format, scenario overrides, and the phased workloads — plus the
//! kernel-equivalence shape for streamed sources.
//!
//! Slow tier: the long-run acceptance shape (an 8-core streaming mix at
//! millions of ops per core with bounded memory), `#[ignore]`d behind
//! `FIGARO_SLOW_TESTS=1` like the other paper-shape tests; the full
//! 100M-ops-per-core run is reachable through the `streaming_scenarios`
//! bench's `FIGARO_LONG_RUN` knob.

use figaro_sim::experiments::long_run_scenarios;
use figaro_sim::{
    ConfigKind, Kernel, Runner, Scale, Scenario, ScenarioWorkload, System, SystemConfig,
};
use figaro_tests::{slow_guard, SLOW_HINT};
use figaro_workloads::{
    phased_profiles, profile_by_name, FileReplay, RecordingSource, TraceGenerator, TraceSource,
};

#[test]
fn tiny_streaming_scenario_completes() {
    // The CI smoke: one streamed FIGCache scenario with shape overrides.
    let runner = Runner::uncached(Scale::Tiny);
    let sc = Scenario::new(
        "ci-stream",
        ConfigKind::FigCacheFast,
        ScenarioWorkload::Apps(vec![
            profile_by_name("mcf").unwrap(),
            profile_by_name("lbm").unwrap(),
        ]),
    )
    .with_channels(2)
    .with_mshrs(8)
    .with_target_insts(15_000);
    let s = runner.run_scenario(&sc);
    assert!(s.ipc.iter().all(|&i| i > 0.0), "both cores must retire");
    assert!(s.relocs > 0, "FIGCache must relocate under the streamed workload");
    assert!(s.ipc.iter().all(|i| i.is_finite()));
}

#[test]
fn streamed_sources_are_kernel_equivalent() {
    // The event kernel must stay bit-identical to the reference when the
    // cores pull from live generators instead of materialized traces.
    let run = |kernel: Kernel| {
        let sources: Vec<Box<dyn TraceSource>> = ["mcf", "zeusmp"]
            .iter()
            .map(|n| {
                Box::new(TraceGenerator::new(&profile_by_name(n).unwrap(), 13))
                    as Box<dyn TraceSource>
            })
            .collect();
        let cfg = SystemConfig { kernel, ..SystemConfig::paper(2, ConfigKind::FigCacheFast) };
        let mut sys = System::from_sources(cfg, sources, &[10_000; 2]);
        sys.run(10_000_000)
    };
    assert_eq!(run(Kernel::Reference), run(Kernel::Event));
}

#[test]
fn phased_workload_record_replay_round_trips() {
    // Record a phased streaming run; replaying the file must reproduce
    // the RunStats bit for bit (the acceptance property of the trace
    // format).
    let phased = phased_profiles().remove(0);
    let path =
        std::env::temp_dir().join(format!("figaro-phased-replay-{}.figt", std::process::id()));
    let cfg = || SystemConfig::paper(1, ConfigKind::FigCacheFast);
    let recorded = {
        let gen = figaro_workloads::PhasedGenerator::new(&phased, 3);
        let rec = RecordingSource::create(gen, &path).expect("create recording");
        let mut sys = System::from_sources(cfg(), vec![Box::new(rec)], &[25_000]);
        sys.run(10_000_000)
    };
    let replayed = {
        let src = FileReplay::open(&path).expect("open recording");
        assert_eq!(src.name(), phased.name);
        let mut sys = System::from_sources(cfg(), vec![Box::new(src)], &[25_000]);
        sys.run(10_000_000)
    };
    assert_eq!(recorded, replayed);
    let _ = std::fs::remove_file(path);
}

#[test]
#[ignore = "slow paper-shape test: run with FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored"]
fn long_run_streaming_mix_completes_with_bounded_memory() {
    if !slow_guard("long_run_streaming_mix_completes_with_bounded_memory") {
        return;
    }
    let _ = SLOW_HINT;
    // The acceptance shape scaled to the slow tier: an 8-core streaming
    // mix at 2M memory ops per core, fed entirely by generators — the
    // resident set is the system model plus per-core burst buffers,
    // independent of the op count. `FIGARO_LONG_OPS` raises the op count
    // (the full criterion runs 100M via the streaming_scenarios bench).
    let ops: u64 =
        std::env::var("FIGARO_LONG_OPS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000_000);
    let runner = Runner::uncached(Scale::Tiny);
    let sc = &long_run_scenarios(ops)[0];
    let s = runner.run_scenario(sc);
    assert!(s.ipc.iter().all(|&i| i > 0.0), "all eight cores must retire");
    assert!(s.cpu_cycles > ops, "a long run must simulate past its op count in cycles");
}
