//! Property-based invariants across the stack: random command schedules
//! against the DRAM timing engine, random request streams against the
//! FIGCache engine and the memory controller, and metric laws.

use proptest::prelude::*;

use figaro_core::{CacheEngine, FigCacheConfig, FigCacheEngine, NullEngine};
use figaro_dram::{BankAddr, DramChannel, DramCommand, DramConfig, PhysAddr, SubarrayLayout};
use figaro_memctrl::{McConfig, MemoryController, Request};

fn fig_dram() -> DramConfig {
    DramConfig {
        layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
        ..DramConfig::ddr4_paper_default()
    }
}

/// Number of completions drained this cycle (via the allocation-free
/// `drain_completions_into`; the allocating variant is deprecated).
fn drained_count(mc: &mut MemoryController) -> u64 {
    let mut buf = Vec::new();
    mc.drain_completions_into(&mut buf);
    buf.len() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever command the fuzzer proposes, `can_issue == true` implies
    /// `issue` succeeds, and the bank's open-row state follows the
    /// activate/precharge commands exactly.
    #[test]
    fn channel_state_follows_issued_commands(ops in proptest::collection::vec((0u8..6, 0u32..1024, 0u32..64), 1..300)) {
        let cfg = fig_dram();
        let mut ch = DramChannel::new(&cfg);
        let bank = BankAddr { rank: 0, bankgroup: 0, bank: 0 };
        let mut now = 0u64;
        let mut issued_acts = 0u64;
        for (op, row, col) in ops {
            let cmd = match op {
                0 => DramCommand::Activate { row },
                1 => DramCommand::Precharge,
                2 => DramCommand::Read { col: col % 128, auto_pre: false },
                3 => DramCommand::Write { col: col % 128, auto_pre: false },
                4 => DramCommand::Reloc { src_col: col % 128, dst_subarray: 64, dst_col: col % 128 },
                _ => DramCommand::ActivateMerge { row: cfg.layout.fast_row_base(0) },
            };
            let earliest = ch.earliest_issue(bank, &cmd, now);
            if earliest == u64::MAX {
                continue; // structurally illegal in this state
            }
            now = now.max(earliest);
            prop_assert!(ch.can_issue(bank, &cmd, now));
            ch.issue(bank, &cmd, now);
            match cmd {
                DramCommand::Activate { row } => {
                    issued_acts += 1;
                    prop_assert_eq!(ch.open_row(bank), Some(row));
                }
                DramCommand::Precharge => prop_assert_eq!(ch.open_row(bank), None),
                _ => {}
            }
            now += 1;
        }
        let s = ch.stats();
        prop_assert_eq!(s.activates + s.activates_fast, issued_acts);
    }

    /// Engine bookkeeping: lookups partition into hits, misses and
    /// uncacheable; completed insertions never exceed allocation attempts.
    #[test]
    fn engine_stats_partition_lookups(reqs in proptest::collection::vec((0u32..40_000, 0u32..128, any::<bool>()), 1..400)) {
        let dram = fig_dram();
        let mut e = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
        for (row, col, w) in reqs {
            let _ = e.on_request(0, row % 33_000, col, w, None, 0);
            // Run any pending job synchronously.
            while let Some(mut job) = e.take_job(0, 0) {
                let mut open = Some(row % 33_000);
                while let Some(cmd) = job.peek(open, false) {
                    if let DramCommand::Activate { row } = cmd {
                        open = Some(row);
                    }
                    if matches!(cmd, DramCommand::Precharge) {
                        open = None;
                    }
                    job.on_issued(&cmd);
                }
                e.on_job_complete(0, job.id, 0);
            }
        }
        let s = e.stats();
        prop_assert_eq!(s.hits + s.misses + s.uncacheable, s.lookups);
        prop_assert!(s.hits_bypassed <= s.hits);
        prop_assert!(s.insertions + s.insertions_cancelled <= s.misses);
    }

    /// The controller conserves requests: everything enqueued is served
    /// (reads complete exactly once, writes drain), and the row-locality
    /// classification covers every DRAM-served access.
    #[test]
    fn controller_conserves_requests(blocks in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 1..120)) {
        let dram = DramConfig::ddr4_paper_default();
        let cfg = McConfig { enable_refresh: false, ..McConfig::default() };
        let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(NullEngine::new()));
        let mut now = 0u64;
        let mut sent_reads = 0u64;
        let mut sent_writes = 0u64;
        let mut completions = 0u64;
        for (i, (block, is_write)) in blocks.iter().enumerate() {
            while !mc.can_accept(*is_write) {
                mc.tick(now);
                completions += drained_count(&mut mc);
                now += 1;
            }
            let addr = PhysAddr((block % (1 << 25)) * 64);
            mc.enqueue(Request { id: i as u64, addr, is_write: *is_write, core: 0, arrival: now }, now);
            if *is_write { sent_writes += 1 } else { sent_reads += 1 }
            mc.tick(now);
            completions += drained_count(&mut mc);
            now += 1;
        }
        let deadline = now + 200_000;
        while !mc.is_idle() && now < deadline {
            mc.tick(now);
            completions += drained_count(&mut mc);
            now += 1;
        }
        prop_assert!(mc.is_idle(), "controller must drain");
        prop_assert_eq!(completions, sent_reads);
        let s = *mc.stats();
        prop_assert_eq!(s.reads_served, sent_reads);
        prop_assert_eq!(s.writes_served, sent_writes);
        prop_assert_eq!(
            s.row_hits + s.row_misses + s.row_conflicts + s.forwarded,
            sent_reads + sent_writes
        );
    }

    /// Weighted speedup is 1-homogeneous in the shared IPCs and equals the
    /// core count for identical shared/alone vectors.
    #[test]
    fn weighted_speedup_laws(ipc in proptest::collection::vec(0.01f64..4.0, 1..9), k in 0.1f64..10.0) {
        use figaro_sim::metrics::weighted_speedup;
        let ws_self = weighted_speedup(&ipc, &ipc);
        prop_assert!((ws_self - ipc.len() as f64).abs() < 1e-9);
        let scaled: Vec<f64> = ipc.iter().map(|v| v * k).collect();
        let ws_scaled = weighted_speedup(&scaled, &ipc);
        prop_assert!((ws_scaled - k * ipc.len() as f64).abs() < 1e-6);
    }

    /// Trace generation is a pure function of (profile, seed) and stays in
    /// the footprint for every app.
    #[test]
    fn traces_deterministic_and_bounded(seed in any::<u64>(), n in 1usize..2000) {
        for p in figaro_workloads::app_profiles().into_iter().take(4) {
            let a = figaro_workloads::generate_trace(&p, n, seed);
            let b = figaro_workloads::generate_trace(&p, n, seed);
            prop_assert_eq!(&a, &b);
            prop_assert!(a.ops.iter().all(|o| o.addr < p.footprint_bytes));
        }
    }
}

/// Failure injection: a refresh storm (pathologically short tREFI) must
/// not deadlock the controller or lose requests.
#[test]
fn refresh_storm_does_not_deadlock() {
    let mut dram = fig_dram();
    dram.timing.refi = 600; // ~13x the paper's refresh duty cycle
    dram.timing.rfc = 280;
    let engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
    let cfg = McConfig { enable_refresh: true, ..McConfig::default() };
    let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(engine));
    let mut now = 0u64;
    let mut completions = 0u64;
    let mut sent = 0u64;
    while now < 120_000 {
        if now.is_multiple_of(23) && mc.can_accept(false) {
            mc.enqueue(
                Request {
                    id: sent,
                    addr: PhysAddr((sent * 977 % 100_000) * 64),
                    is_write: false,
                    core: 0,
                    arrival: now,
                },
                now,
            );
            sent += 1;
        }
        mc.tick(now);
        completions += drained_count(&mut mc);
        now += 1;
    }
    let deadline = now + 100_000;
    while !mc.is_idle() && now < deadline {
        mc.tick(now);
        completions += drained_count(&mut mc);
        now += 1;
    }
    assert!(mc.is_idle(), "refresh storm deadlocked the controller");
    assert_eq!(completions, sent);
    assert!(mc.dram_stats().refreshes > 100);
}

/// Failure injection: saturating the write queue must stall acceptance,
/// not drop or reorder writes.
#[test]
fn write_queue_saturation_is_lossless() {
    let dram = DramConfig::ddr4_paper_default();
    let cfg = McConfig { enable_refresh: false, ..McConfig::default() };
    let mut mc = MemoryController::new(&dram, cfg, 0, Box::new(NullEngine::new()));
    let mut now = 0u64;
    let mut sent = 0u64;
    // Hammer writes as fast as the queue accepts them.
    while sent < 500 {
        if mc.can_accept(true) {
            mc.enqueue(
                Request {
                    id: sent,
                    addr: PhysAddr((sent % 64) * 8192 * 16 + sent * 64),
                    is_write: true,
                    core: 0,
                    arrival: now,
                },
                now,
            );
            sent += 1;
        }
        mc.tick(now);
        now += 1;
    }
    let deadline = now + 300_000;
    while !mc.is_idle() && now < deadline {
        mc.tick(now);
        now += 1;
    }
    assert!(mc.is_idle());
    assert_eq!(mc.stats().writes_served, 500);
}
