//! Proof obligations of the telemetry subsystem's contract:
//!
//! 1. **Result neutrality** — `RunStats` is bit-identical with
//!    telemetry on vs. off, under every kernel (including the sampled
//!    kernel, whose skip horizon the sampler clamps).
//! 2. **Trace determinism** — the Chrome trace file is byte-identical
//!    across the exact kernels and across parallel worker counts.
//! 3. **Exact reconciliation** — every delta column's running total
//!    equals the corresponding end-of-run aggregate counter, exactly.
//! 4. **Well-formedness** — the emitted JSON parses as a Chrome
//!    trace-event document with balanced span events.
//!
//! Telemetry is always installed programmatically via
//! [`System::set_telemetry`] — never by mutating process env, which
//! parallel test binaries would race on.

use std::path::PathBuf;

use proptest::prelude::*;

use figaro_sim::{ConfigKind, Kernel, RunStats, System, SystemConfig};
use figaro_telemetry::{parse_trace_spec, SeriesSet, TelemetryConfig};
use figaro_workloads::{app_profiles, generate_trace, Trace};

const INSTS: u64 = 8_000;
const INTERVAL: u64 = 2_000;

/// A unique scratch path for one test's trace file.
fn trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("figaro-telemetry-{}-{tag}.json", std::process::id()))
}

/// Builds the standard tiny system for `(seed, cores, channels)`.
fn system(
    seed: u64,
    cores: usize,
    channels: u32,
    kind: &ConfigKind,
    kernel: Kernel,
    threads: usize,
) -> System {
    let profiles = app_profiles();
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let p = &profiles[(seed as usize + 7 * i) % profiles.len()];
            generate_trace(p, 6_000, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
        })
        .collect();
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) }
        .with_channels(channels)
        .with_threads(threads);
    System::new(cfg, traces, &vec![INSTS; cores])
}

/// Runs with an explicit telemetry config; returns the stats and (when
/// no trace sink consumed it) the collected series.
fn run_telemetered(
    seed: u64,
    kind: &ConfigKind,
    kernel: Kernel,
    threads: usize,
    tcfg: &TelemetryConfig,
) -> (RunStats, Option<SeriesSet>) {
    let mut sys = system(seed, 2, 4, kind, kernel, threads);
    sys.set_telemetry(tcfg);
    let stats = sys.run(INSTS * 400);
    let series = sys.telemetry_series().cloned();
    (stats, series)
}

/// The kernels the neutrality property quantifies over.
fn kernels() -> [Kernel; 4] {
    [
        Kernel::Reference,
        Kernel::Event,
        Kernel::Parallel,
        Kernel::Sampled { window: 30_000, skip: 50_000 },
    ]
}

#[test]
fn telemetry_on_equals_off_under_every_kernel() {
    for (k, kernel) in kernels().into_iter().enumerate() {
        let threads = if matches!(kernel, Kernel::Parallel) { 4 } else { 1 };
        let (off, _) = run_telemetered(
            11,
            &ConfigKind::FigCacheFast,
            kernel,
            threads,
            &TelemetryConfig::off(),
        );
        let path = trace_path(&format!("neutrality-{k}"));
        let on_cfg = TelemetryConfig {
            interval: Some(INTERVAL),
            trace: Some(parse_trace_spec(&format!("{}:all", path.display()))),
        };
        let (on, _) = run_telemetered(11, &ConfigKind::FigCacheFast, kernel, threads, &on_cfg);
        assert_eq!(off, on, "telemetry perturbed RunStats under {kernel:?}");
        assert!(path.exists(), "traced run left no file under {kernel:?}");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn trace_bytes_identical_across_kernels_and_thread_counts() {
    // The serial event kernel, the sharded kernel inline, and the
    // sharded kernel on four workers must serialize the same story —
    // with the epoch stream muted (the default filter), since epoch
    // barriers are a parallel-kernel artifact, not simulated history.
    let mut blobs = Vec::new();
    for (tag, kernel, threads) in
        [("event", Kernel::Event, 1), ("par1", Kernel::Parallel, 1), ("par4", Kernel::Parallel, 4)]
    {
        let path = trace_path(&format!("bytes-{tag}"));
        let cfg = TelemetryConfig {
            interval: Some(INTERVAL),
            trace: Some(parse_trace_spec(&path.display().to_string())),
        };
        let (_, _) = run_telemetered(7, &ConfigKind::FigCacheFast, kernel, threads, &cfg);
        blobs.push((tag, std::fs::read(&path).expect("trace file")));
        let _ = std::fs::remove_file(&path);
    }
    let (base_tag, base) = &blobs[0];
    for (tag, blob) in &blobs[1..] {
        assert_eq!(blob, base, "trace bytes diverged: {tag} vs {base_tag}");
    }
    assert!(!base.is_empty());
}

#[test]
fn interval_series_reconciles_exactly_with_run_stats() {
    // Interval-only config (no sink), so the series survives the run.
    let cfg = TelemetryConfig { interval: Some(INTERVAL), trace: None };
    let (stats, series) = run_telemetered(5, &ConfigKind::FigCacheFast, Kernel::Event, 1, &cfg);
    let series = series.expect("series collected");
    assert!(series.len() > 1, "want several samples, got {}", series.len());
    assert_eq!(series.cycles.back(), Some(&stats.cpu_cycles), "final flush sample missing");
    let total = |name: &str| {
        series.cols[series.col_index(name).unwrap_or_else(|| panic!("no column {name}"))].total
    };
    let ch_sum = |suffix: &str| (0..4).map(|ch| total(&format!("ch{ch}.{suffix}"))).sum::<u64>();
    // Per-channel deltas against the per-channel aggregate record.
    for (ch, c) in stats.per_channel.iter().enumerate() {
        assert_eq!(total(&format!("ch{ch}.row_hits")), c.row_hits, "ch{ch} row_hits");
        assert_eq!(total(&format!("ch{ch}.row_misses")), c.row_misses, "ch{ch} row_misses");
        assert_eq!(
            total(&format!("ch{ch}.row_conflicts")),
            c.row_conflicts,
            "ch{ch} row_conflicts"
        );
    }
    // Channel sums against the merged end-of-run aggregates.
    assert_eq!(ch_sum("row_hits"), stats.mc.row_hits);
    assert_eq!(ch_sum("row_misses"), stats.mc.row_misses);
    assert_eq!(ch_sum("row_conflicts"), stats.mc.row_conflicts);
    assert_eq!(ch_sum("cache_hits"), stats.cache.hits);
    assert_eq!(ch_sum("cache_insertions"), stats.cache.insertions);
    assert_eq!(
        ch_sum("cache_evictions"),
        stats.cache.evictions_clean + stats.cache.evictions_dirty
    );
    assert_eq!(ch_sum("relocs"), stats.dram.relocs);
    assert_eq!(ch_sum("refreshes"), stats.dram.refreshes);
    // Core retirement deltas against the per-core instruction targets.
    for (c, &insts) in stats.instructions.iter().enumerate() {
        assert_eq!(total(&format!("core{c}.retired")), insts, "core{c} retired");
    }
    assert!(stats.dram.relocs > 0, "workload exercised no relocation — weak test");
}

#[test]
fn interval_series_is_identical_across_exact_kernels() {
    let cfg = TelemetryConfig { interval: Some(INTERVAL), trace: None };
    let mut csvs = Vec::new();
    for (tag, kernel, threads) in [
        ("reference", Kernel::Reference, 1),
        ("event", Kernel::Event, 1),
        ("par4", Kernel::Parallel, 4),
    ] {
        let (_, series) = run_telemetered(9, &ConfigKind::FigCacheFast, kernel, threads, &cfg);
        csvs.push((tag, series.expect("series").to_csv()));
    }
    let (base_tag, base) = &csvs[0];
    for (tag, csv) in &csvs[1..] {
        assert_eq!(csv, base, "series diverged: {tag} vs {base_tag}");
    }
    assert!(base.lines().count() > 2);
}

#[test]
fn chrome_trace_is_well_formed_and_balanced() {
    let path = trace_path("wellformed");
    let cfg = TelemetryConfig {
        interval: None,
        trace: Some(parse_trace_spec(&format!("{}:all", path.display()))),
    };
    let (stats, _) = run_telemetered(3, &ConfigKind::FigCacheFast, Kernel::Parallel, 4, &cfg);
    let sum = figaro_telemetry::trace::summarize_file(&path).expect("valid Chrome trace JSON");
    let _ = std::fs::remove_file(&path);
    assert!(sum.events > 0, "empty trace");
    assert!(sum.balanced(), "unbalanced span events");
    assert!(sum.complete > 0, "no complete (span) events — relocation/drain history missing");
    assert!(sum.instant > 0, "no instant events — refresh/epoch marks missing");
    assert!(
        sum.max_ts <= stats.cpu_cycles,
        "event stamped past the end of the run: {} > {}",
        sum.max_ts,
        stats.cpu_cycles
    );
    let cats: Vec<&str> = sum.by_cat.iter().map(|(c, _)| c.as_str()).collect();
    assert!(cats.contains(&"reloc"), "no reloc category in {cats:?}");
    assert!(cats.contains(&"refresh"), "no refresh category in {cats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seed x mechanism x kernel: telemetry (series + trace)
    /// never changes a single bit of `RunStats`.
    #[test]
    fn telemetry_never_perturbs_run_stats(
        seed in 0u64..1_000_000,
        kind_idx in 0usize..2,
        kernel_idx in 0usize..4,
    ) {
        let kind = if kind_idx == 0 { ConfigKind::Base } else { ConfigKind::FigCacheFast };
        let kernel = kernels()[kernel_idx];
        let threads = if matches!(kernel, Kernel::Parallel) { 4 } else { 1 };
        let (off, _) = run_telemetered(seed, &kind, kernel, threads, &TelemetryConfig::off());
        let path = trace_path(&format!("prop-{seed}-{kind_idx}-{kernel_idx}"));
        let cfg = TelemetryConfig {
            interval: Some(INTERVAL),
            trace: Some(parse_trace_spec(&path.display().to_string())),
        };
        let (on, _) = run_telemetered(seed, &kind, kernel, threads, &cfg);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(
            &off, &on,
            "telemetry perturbed RunStats: seed={} kind={} kernel={:?}",
            seed, kind.label(), kernel
        );
    }
}
