//! Warm-start through the [`Runner`]: a warmed scenario run must be
//! bit-identical to a cold uninterrupted run (the FGSN resume
//! guarantee, exercised end to end through `run_scenario`), the warm
//! snapshot must be written once and reused by every run sharing the
//! warm prefix — including other kernels — and warmed results must key
//! separately in the result cache so canonical entries stay cold.

use std::path::{Path, PathBuf};

use figaro_sim::{ConfigKind, Kernel, Runner, Scale, Scenario, ScenarioWorkload};
use figaro_workloads::profile_by_name;

const WARM_CYCLES: u64 = 2_000;

fn scenario() -> Scenario {
    Scenario::new(
        "warmstart",
        ConfigKind::FigCacheFast,
        ScenarioWorkload::Apps(vec![
            profile_by_name("mcf").unwrap(),
            profile_by_name("lbm").unwrap(),
        ]),
    )
    .with_target_insts(12_000)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("figaro-warm-{tag}-{}", std::process::id()))
}

fn fgsn_count(dir: &Path) -> usize {
    std::fs::read_dir(dir).map_or(0, |rd| {
        rd.filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "fgsn"))
            .count()
    })
}

#[test]
fn warm_run_matches_cold_run_bit_for_bit() {
    let snaps = tmp_dir("eq");
    let _ = std::fs::remove_dir_all(&snaps);

    let cold = Runner::uncached(Scale::Tiny).run_scenario(&scenario());
    let warm = Runner::uncached(Scale::Tiny)
        .with_snapshot_dir(snaps.clone())
        .run_scenario(&scenario().with_warmup(WARM_CYCLES));
    assert_eq!(warm, cold, "resuming from the warm snapshot diverged from the cold run");
    assert_eq!(fgsn_count(&snaps), 1, "warmup must publish exactly one snapshot");

    // The reference kernel shares the warm prefix: it must branch from
    // the existing snapshot (no second file) and still match its own
    // cold run — which is bit-identical to the event kernel's.
    let reference = Runner::uncached(Scale::Tiny)
        .with_snapshot_dir(snaps.clone())
        .with_kernel(Kernel::Reference)
        .run_scenario(&scenario().with_warmup(WARM_CYCLES));
    assert_eq!(reference, cold, "reference-kernel warm run diverged");
    assert_eq!(fgsn_count(&snaps), 1, "a shared warm prefix must reuse the snapshot");

    // A different warm length is a different prefix: new snapshot.
    let longer = Runner::uncached(Scale::Tiny)
        .with_snapshot_dir(snaps.clone())
        .run_scenario(&scenario().with_warmup(WARM_CYCLES * 2));
    assert_eq!(longer, cold, "longer warmup still resumes bit-identically");
    assert_eq!(fgsn_count(&snaps), 2, "a different warm length is its own snapshot");

    let _ = std::fs::remove_dir_all(&snaps);
}

#[test]
fn warm_and_sampled_runs_key_separately_in_result_cache() {
    let cache = tmp_dir("keys");
    let _ = std::fs::remove_dir_all(&cache);

    // One cold, one warmed, one sampled run of the same scenario: three
    // distinct cache entries, so approximate or warmed results can never
    // shadow the canonical cold entry.
    let runner = Runner::with_cache_dir(Scale::Tiny, cache.clone());
    let cold = runner.run_scenario(&scenario());
    let warm = runner.run_scenario(&scenario().with_warmup(WARM_CYCLES));
    let sampled = Runner::with_cache_dir(Scale::Tiny, cache.clone())
        .with_kernel(Kernel::Sampled { window: 4_000, skip: 8_000 })
        .run_scenario(&scenario());
    assert_eq!(warm, cold);

    let names: Vec<String> = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "txt"))
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names.len(), 3, "cold, warm and sampled must key separately: {names:?}");
    assert_eq!(names.iter().filter(|n| n.contains("-warm-2000")).count(), 1, "{names:?}");
    assert_eq!(names.iter().filter(|n| n.contains("-sampled-4000_8000")).count(), 1, "{names:?}");

    // The warm snapshot defaulted to <cache_dir>/snapshots.
    assert_eq!(fgsn_count(&cache.join("snapshots")), 1);

    // Sampled mode is approximate: it must have produced a *different*
    // entry, not a copy of the canonical numbers under another name.
    assert!(sampled.cpu_cycles > 0 && sampled.ipc.iter().all(|i| i.is_finite()));

    let _ = std::fs::remove_dir_all(&cache);
}
