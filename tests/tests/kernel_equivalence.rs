//! Cross-crate proof obligation of the event-driven kernel: for random
//! seeds, workloads, core counts and every evaluated mechanism, the
//! next-event kernel's [`RunStats`] are **bit-identical** to the
//! per-cycle reference loop's. This is the refactor's correctness
//! argument — any divergence in a counter, finish cycle, or energy
//! figure fails the property.

use proptest::prelude::*;

use figaro_sim::{ConfigKind, Kernel, RunStats, System, SystemConfig};
use figaro_workloads::{app_profiles, generate_trace, Trace};

/// Runs one system built from `(seed, cores, kind)` under `kernel`.
fn run(seed: u64, cores: usize, kind: &ConfigKind, kernel: Kernel, insts: u64) -> RunStats {
    let profiles = app_profiles();
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            // Mix intensive and non-intensive profiles across cores.
            let p = &profiles[(seed as usize + 7 * i) % profiles.len()];
            generate_trace(p, 6_000, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
        })
        .collect();
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) };
    let mut sys = System::new(cfg, traces, &vec![insts; cores]);
    sys.run(insts * 400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seed x Figure 7/8 mechanism x 1-4 cores (powers of two —
    /// the shared LLC scales at 2 MB/core and needs a power-of-two set
    /// count): the two kernels must agree bit-for-bit on the full
    /// statistics record.
    #[test]
    fn event_kernel_is_bit_identical_to_reference(
        seed in 0u64..1_000_000,
        cores_log2 in 0u32..3,
        kind_idx in 0usize..6,
    ) {
        let cores = 1usize << cores_log2;
        let mut kinds = vec![ConfigKind::Base];
        kinds.extend(ConfigKind::figure78_set());
        let kind = &kinds[kind_idx];
        let insts = 10_000;
        let reference = run(seed, cores, kind, Kernel::Reference, insts);
        let event = run(seed, cores, kind, Kernel::Event, insts);
        prop_assert_eq!(
            &reference,
            &event,
            "RunStats diverged: seed={} cores={} kind={}",
            seed,
            cores,
            kind.label()
        );
        // The run must be non-trivial for the comparison to mean much.
        prop_assert!(reference.instructions.iter().all(|&i| i == insts));
        prop_assert!(reference.dram.reads > 0, "workload never reached DRAM");
    }
}
