//! Cross-crate proof obligations of the address-mapping & page-mapping
//! subsystem.
//!
//! 1. **Seed bit-identity**: the default mapping (the paper's
//!    `{row, rank, bankgroup, bank, channel, column}` slice) plus the
//!    identity page mapper reproduce the PR-4 seed `RunStats` bit for
//!    bit — under **both kernels and all four scheduler policies** (the
//!    FR-FCFS rows are exactly the PR-4 goldens of
//!    `tests/tests/sched_policies.rs`; the other policies' digests were
//!    captured from the pre-subsystem head; regenerate with
//!    `cargo run --release --example mapping_golden_digest`).
//! 2. **Mapping × kernel equivalence**: every mapping scheme and page
//!    policy keeps the event kernel bit-identical to the per-cycle
//!    reference.
//! 3. **Placement really moves**: non-default mappings and placements
//!    change DRAM behavior (they must not silently fall back to the
//!    default path).
//! 4. **Runner plumbing**: scenario-level mapping/page overrides reach
//!    the system and never share cache entries with the default.

use proptest::prelude::*;

use figaro_sim::experiments::{mapping_kinds, mapping_sweep_with, page_policies};
use figaro_sim::{
    ConfigKind, Kernel, MapKind, MapScheme, PageMapKind, RunStats, Runner, Scale, Scenario,
    ScenarioWorkload, SchedPolicyKind, System, SystemConfig,
};
use figaro_workloads::{generate_trace, profile_by_name, Trace};

/// The digest fields asserted against the pre-subsystem goldens.
fn digest(s: &RunStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        s.cpu_cycles,
        s.mc.row_hits,
        s.mc.row_misses,
        s.mc.row_conflicts,
        s.mc.reads_served,
        s.mc.writes_served,
        s.mc.forwarded,
        s.mc.read_latency_sum,
        s.dram.relocs,
        s.dram.refreshes,
        s.cache.insertions,
    )
}

/// The deterministic multi-app run shape the goldens were captured on
/// (the same shape as the PR-4 scheduler goldens), with the mapping and
/// page placement pinned **explicitly** so the test exercises the full
/// plumbing rather than the untouched-default shortcut.
fn golden_run(kind: &ConfigKind, sched: SchedPolicyKind, kernel: Kernel, cores: usize) -> RunStats {
    let apps = ["mcf", "lbm", "zeusmp", "libquantum"];
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let p = profile_by_name(apps[i % apps.len()]).unwrap();
            generate_trace(&p, 8_000, 7 + i as u64)
        })
        .collect();
    let insts = 12_000u64;
    // A worker per channel for the parallel-kernel rows (the serial
    // kernels never read the knob; thread count never changes results).
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) }
        .with_sched(sched)
        .with_mapping(MapKind::paper())
        .with_page_map(PageMapKind::Identity)
        .with_threads(4);
    let mut sys = System::new(cfg, traces, &vec![insts; cores]);
    sys.run(insts * 400)
}

/// One golden row: config label, scheduler label, kernel label, cores,
/// then the [`digest`] fields in order.
type GoldenRow = (
    &'static str,
    &'static str,
    &'static str,
    usize,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
);

/// The PR-4/PR-5 seed goldens, captured on the pre-subsystem head; the
/// frfcfs rows equal the PR-4 seed goldens in
/// `tests/tests/sched_policies.rs`.
fn seed_goldens() -> &'static [GoldenRow] {
    #[rustfmt::skip]
    let goldens: &[GoldenRow] = &[
        ("Base", "frfcfs", "reference", 1, 55780, 474, 45, 1000, 1519, 0, 0, 131866, 0, 2, 0),
        ("Base", "frfcfs", "reference", 4, 54808, 3629, 144, 1747, 5520, 0, 0, 434698, 0, 8, 0),
        ("Base", "frfcfs", "event", 1, 55780, 474, 45, 1000, 1519, 0, 0, 131866, 0, 2, 0),
        ("Base", "frfcfs", "event", 4, 54808, 3629, 144, 1747, 5520, 0, 0, 434698, 0, 8, 0),
        ("Base", "fcfs", "reference", 1, 148097, 461, 89, 956, 1506, 0, 0, 316844, 0, 5, 0),
        ("Base", "fcfs", "reference", 4, 108232, 3554, 264, 1669, 5487, 0, 0, 851328, 0, 16, 0),
        ("Base", "fcfs", "event", 1, 148097, 461, 89, 956, 1506, 0, 0, 316844, 0, 5, 0),
        ("Base", "fcfs", "event", 4, 108232, 3554, 264, 1669, 5487, 0, 0, 851328, 0, 16, 0),
        ("Base", "frfcfs-cap4", "reference", 1, 56000, 472, 47, 1000, 1519, 0, 0, 132306, 0, 2, 0),
        ("Base", "frfcfs-cap4", "reference", 4, 54428, 3503, 259, 1773, 5535, 0, 0, 459830, 0, 8, 0),
        ("Base", "frfcfs-cap4", "event", 1, 56000, 472, 47, 1000, 1519, 0, 0, 132306, 0, 2, 0),
        ("Base", "frfcfs-cap4", "event", 4, 54428, 3503, 259, 1773, 5535, 0, 0, 459830, 0, 8, 0),
        ("Base", "wdrain48-8", "reference", 1, 55780, 474, 45, 1000, 1519, 0, 0, 131866, 0, 2, 0),
        ("Base", "wdrain48-8", "reference", 4, 54808, 3629, 144, 1747, 5520, 0, 0, 434698, 0, 8, 0),
        ("Base", "wdrain48-8", "event", 1, 55780, 474, 45, 1000, 1519, 0, 0, 131866, 0, 2, 0),
        ("Base", "wdrain48-8", "event", 4, 54808, 3629, 144, 1747, 5520, 0, 0, 434698, 0, 8, 0),
        ("FIGCache-Fast", "frfcfs", "reference", 1, 63752, 548, 87, 885, 1520, 0, 0, 147188, 13504, 2, 842),
        ("FIGCache-Fast", "frfcfs", "reference", 4, 60264, 3746, 186, 1579, 5511, 0, 0, 472416, 26416, 8, 1650),
        ("FIGCache-Fast", "frfcfs", "event", 1, 63752, 548, 87, 885, 1520, 0, 0, 147188, 13504, 2, 842),
        ("FIGCache-Fast", "frfcfs", "event", 4, 60264, 3746, 186, 1579, 5511, 0, 0, 472416, 26416, 8, 1650),
        ("FIGCache-Fast", "fcfs", "reference", 1, 162109, 523, 103, 880, 1506, 0, 0, 344766, 13424, 6, 838),
        ("FIGCache-Fast", "fcfs", "reference", 4, 117788, 3665, 281, 1544, 5490, 0, 0, 886328, 26416, 16, 1648),
        ("FIGCache-Fast", "fcfs", "event", 1, 162109, 523, 103, 880, 1506, 0, 0, 344766, 13424, 6, 838),
        ("FIGCache-Fast", "fcfs", "event", 4, 117788, 3665, 281, 1544, 5490, 0, 0, 886328, 26416, 16, 1648),
        ("FIGCache-Fast", "frfcfs-cap4", "reference", 1, 64092, 545, 90, 885, 1520, 0, 0, 147856, 13504, 2, 842),
        ("FIGCache-Fast", "frfcfs-cap4", "reference", 4, 61048, 3617, 300, 1596, 5513, 0, 0, 494942, 26512, 8, 1655),
        ("FIGCache-Fast", "frfcfs-cap4", "event", 1, 64092, 545, 90, 885, 1520, 0, 0, 147856, 13504, 2, 842),
        ("FIGCache-Fast", "frfcfs-cap4", "event", 4, 61048, 3617, 300, 1596, 5513, 0, 0, 494942, 26512, 8, 1655),
        ("FIGCache-Fast", "wdrain48-8", "reference", 1, 63752, 548, 87, 885, 1520, 0, 0, 147188, 13504, 2, 842),
        ("FIGCache-Fast", "wdrain48-8", "reference", 4, 60264, 3746, 186, 1579, 5511, 0, 0, 472416, 26416, 8, 1650),
        ("FIGCache-Fast", "wdrain48-8", "event", 1, 63752, 548, 87, 885, 1520, 0, 0, 147188, 13504, 2, 842),
        ("FIGCache-Fast", "wdrain48-8", "event", 4, 60264, 3746, 186, 1579, 5511, 0, 0, 472416, 26416, 8, 1650),
    ];
    goldens
}

#[test]
fn default_mapping_and_identity_pages_reproduce_the_pr4_seed_bit_for_bit() {
    for &(label, sched_label, kernel_label, cores, a, b, c, d, e, f, g, h, i, j, k) in
        seed_goldens()
    {
        let kind = if label == "Base" { ConfigKind::Base } else { ConfigKind::FigCacheFast };
        let sched = SchedPolicyKind::from_name(sched_label).expect("golden sched label known");
        let kernel = if kernel_label == "event" { Kernel::Event } else { Kernel::Reference };
        let s = golden_run(&kind, sched, kernel, cores);
        assert_eq!(
            digest(&s),
            (a, b, c, d, e, f, g, h, i, j, k),
            "default mapping diverged from the seed: {label}/{sched_label}/{kernel_label}/{cores}c"
        );
    }
}

#[test]
fn parallel_kernel_reproduces_the_seed_goldens_bit_for_bit() {
    // The sharded parallel kernel must land on the same pre-subsystem
    // digests as the serial kernels — on these shapes it runs 4 channels
    // under 4 worker threads (and 1 channel inline for the single-core
    // rows), so a lookahead or epoch-ordering bug shows up as a golden
    // mismatch, not just an equivalence failure against a fresh run.
    for &(label, sched_label, kernel_label, cores, a, b, c, d, e, f, g, h, i, j, k) in
        seed_goldens()
    {
        if kernel_label != "event" {
            continue; // one parallel run per (config, sched, cores) row
        }
        let kind = if label == "Base" { ConfigKind::Base } else { ConfigKind::FigCacheFast };
        let sched = SchedPolicyKind::from_name(sched_label).expect("golden sched label known");
        let s = golden_run(&kind, sched, Kernel::Parallel, cores);
        assert_eq!(
            digest(&s),
            (a, b, c, d, e, f, g, h, i, j, k),
            "parallel kernel diverged from the seed: {label}/{sched_label}/{cores}c"
        );
    }
}

/// Runs one mapping/page/kernel combination on a deterministic mix.
fn placement_run(
    seed: u64,
    cores: usize,
    map: MapKind,
    page_map: PageMapKind,
    kind: &ConfigKind,
    kernel: Kernel,
) -> RunStats {
    let apps = ["mcf", "lbm", "zeusmp", "libquantum"];
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let p = profile_by_name(apps[(seed as usize + i) % apps.len()]).unwrap();
            generate_trace(&p, 6_000, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
        })
        .collect();
    let insts = 8_000u64;
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) }
        .with_mapping(map)
        .with_page_map(page_map);
    let mut sys = System::new(cfg, traces, &vec![insts; cores]);
    sys.run(insts * 400)
}

#[test]
fn non_default_placements_actually_move_data() {
    // Every non-default mapping and page policy must produce a run that
    // differs from the paper/identity default — a sweep whose points
    // silently collapse onto the default would measure nothing.
    let base = placement_run(
        1,
        4,
        MapKind::paper(),
        PageMapKind::Identity,
        &ConfigKind::Base,
        Kernel::Event,
    );
    for map in mapping_kinds().into_iter().skip(1) {
        let s = placement_run(1, 4, map, PageMapKind::Identity, &ConfigKind::Base, Kernel::Event);
        assert_ne!(digest(&s), digest(&base), "mapping {} changed nothing", map.label());
    }
    for page in page_policies().into_iter().skip(1) {
        let s = placement_run(1, 4, MapKind::paper(), page, &ConfigKind::Base, Kernel::Event);
        assert_ne!(digest(&s), digest(&base), "page policy {} changed nothing", page.label());
    }
}

#[test]
fn rowint_serializes_banks_and_chfirst_spreads_them() {
    // Directional sanity on the two extremes: the bank-sequential
    // row-interleaved scheme must lose row-buffer-level parallelism
    // against the paper mapping on a multi-bank mix (longer run), while
    // chfirst still finishes (it trades row hits for bank spread).
    let paper = placement_run(
        2,
        4,
        MapKind::paper(),
        PageMapKind::Identity,
        &ConfigKind::Base,
        Kernel::Event,
    );
    let rowint = placement_run(
        2,
        4,
        MapKind { scheme: MapScheme::RowInt, xor_bank: false },
        PageMapKind::Identity,
        &ConfigKind::Base,
        Kernel::Event,
    );
    assert!(
        rowint.cpu_cycles > paper.cpu_cycles,
        "bank-sequential mapping must be slower than the paper interleaving \
         ({} vs {} cycles)",
        rowint.cpu_cycles,
        paper.cpu_cycles
    );
}

#[test]
fn scenario_mapping_override_reaches_the_system_and_gets_its_own_cache_key() {
    let dir =
        std::env::temp_dir().join(format!("figaro-cache-test-{}", std::process::id())).join("map");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = Runner::with_cache_dir(Scale::Tiny, dir.clone());
    let sc = |map: MapKind, page: PageMapKind| {
        Scenario::new(
            "map-key",
            ConfigKind::Base,
            ScenarioWorkload::Apps(vec![profile_by_name("mcf").unwrap()]),
        )
        .with_target_insts(12_000)
        .with_mapping(map)
        .with_page_map(page)
    };
    let default = runner.run_scenario(&sc(MapKind::paper(), PageMapKind::Identity));
    let rowint = runner.run_scenario(&sc(
        MapKind { scheme: MapScheme::RowInt, xor_bank: false },
        PageMapKind::Identity,
    ));
    let colored = runner.run_scenario(&sc(MapKind::paper(), PageMapKind::Color { colors: 16 }));
    assert_ne!(default, rowint, "mappings must not share cached results");
    assert_ne!(default, colored, "page policies must not share cached results");
    assert!(
        rowint.cpu_cycles > default.cpu_cycles,
        "bank-sequential mapping must serialize mcf's bank bursts \
         ({} vs {} cycles)",
        rowint.cpu_cycles,
        default.cpu_cycles
    );
    let _ = std::fs::remove_dir_all(dir.parent().unwrap());
}

#[test]
fn mapping_sweep_tiny_grid_runs_and_exports_csv() {
    // The CI fast tier's mapping-sweep smoke: the full mapping x page x
    // mechanism grid on streamed mixes at a tiny instruction target,
    // with the CSV export the slow tier uploads as an artifact.
    let runner = Runner::uncached(Scale::Tiny);
    let fig = mapping_sweep_with(&runner, Some(4_000));
    assert_eq!(fig.rows.len(), 4 * 3 * 2, "4 mappings x 3 page policies x 2 mechanisms");
    assert!(fig.columns.len() >= 6, "ipc + row-hit + cache-hit per mix");
    for (label, vals) in &fig.rows {
        assert!(vals.iter().all(|v| v.is_finite() && *v >= 0.0), "non-finite cell in row {label}");
        assert!(vals[0] > 0.0, "zero throughput in row {label}");
    }
    let csv = fig.to_csv();
    assert!(csv.lines().count() > 24, "csv must carry the grid");
    assert!(csv.contains("paper / ident / Base"));
    assert!(csv.contains("rowint / color16 / FIGCache-Fast"));
    assert!(csv.contains("paper-xor / rand1 / Base"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every mapping scheme and page policy preserves the event-kernel
    /// contract: random seed x mapping x page policy x mechanism,
    /// bit-identical RunStats between the event and reference kernels.
    #[test]
    fn every_placement_preserves_kernel_equivalence(
        seed in 0u64..1_000_000,
        map_idx in 0usize..4,
        page_idx in 0usize..3,
        kind_idx in 0usize..2,
    ) {
        let map = mapping_kinds()[map_idx];
        let page = page_policies()[page_idx];
        let kinds = [ConfigKind::Base, ConfigKind::FigCacheFast];
        let kind = &kinds[kind_idx];
        let reference = placement_run(seed, 2, map, page, kind, Kernel::Reference);
        let event = placement_run(seed, 2, map, page, kind, Kernel::Event);
        prop_assert_eq!(
            &reference,
            &event,
            "RunStats diverged: seed={} map={} page={} kind={}",
            seed,
            map.label(),
            page.label(),
            kind.label()
        );
        prop_assert!(reference.dram.reads > 0, "workload never reached DRAM");
    }
}
