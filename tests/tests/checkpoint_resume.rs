//! Resume equivalence of FGSN snapshots: saving at a random cycle and
//! restoring into a freshly built system must continue **bit-identically**
//! to the uninterrupted run — under every exact kernel, with and without
//! an in-DRAM cache engine, across core counts. This is the correctness
//! argument for warm-start sweeps: a sweep point branching from a warm
//! snapshot reports exactly what a cold uninterrupted run would have.

use proptest::prelude::*;

use figaro_sim::{snapshot, ConfigKind, Kernel, RunStats, System, SystemConfig};
use figaro_workloads::{app_profiles, generate_trace, Trace};

/// A deterministic multi-core system from `(seed, cores, kind, kernel)`.
fn build(seed: u64, cores: usize, kind: &ConfigKind, kernel: Kernel, insts: u64) -> System {
    let profiles = app_profiles();
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let p = &profiles[(seed as usize + 7 * i) % profiles.len()];
            generate_trace(p, 6_000, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
        })
        .collect();
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) };
    System::new(cfg, traces, &vec![insts; cores])
}

/// Runs to completion, interrupted at `save_at` by a save/restore round
/// trip through FGSN bytes, and returns both the resumed stats and the
/// uninterrupted golden run.
fn interrupted_vs_golden(
    seed: u64,
    cores: usize,
    kind: &ConfigKind,
    kernel: Kernel,
    insts: u64,
    save_at: u64,
) -> (RunStats, RunStats) {
    let max = insts * 400;
    let golden = build(seed, cores, kind, kernel, insts).run(max);

    let mut first = build(seed, cores, kind, kernel, insts);
    let _ = first.run(save_at);
    let mut bytes = Vec::new();
    snapshot::save_to_writer(&first, &mut bytes).expect("snapshot save");

    let mut resumed = build(seed, cores, kind, kernel, insts);
    snapshot::restore_from_reader(&mut resumed, &mut bytes.as_slice()).expect("snapshot restore");
    (resumed.run(max), golden)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random seed x save cycle x {Reference, Event, Parallel} x
    /// {Base, FIGCache-Fast} x 1-2 cores: the resumed run's full
    /// statistics record equals the uninterrupted run's bit for bit.
    #[test]
    fn resumed_run_is_bit_identical_to_uninterrupted(
        seed in 0u64..1_000_000,
        save_at in 500u64..40_000,
        kernel_idx in 0usize..3,
        cached in any::<bool>(),
        cores_log2 in 0u32..2,
    ) {
        let kernel = [Kernel::Reference, Kernel::Event, Kernel::Parallel][kernel_idx];
        let kind = if cached { ConfigKind::FigCacheFast } else { ConfigKind::Base };
        let cores = 1usize << cores_log2;
        let insts = 8_000;
        let (resumed, golden) = interrupted_vs_golden(seed, cores, &kind, kernel, insts, save_at);
        prop_assert_eq!(
            &resumed,
            &golden,
            "resume diverged: seed={} save_at={} kernel={:?} kind={} cores={}",
            seed,
            save_at,
            kernel,
            kind.label(),
            cores
        );
        prop_assert!(golden.instructions.iter().all(|&i| i == insts));
    }

    /// Warm-start's cross-kernel contract: a snapshot written under the
    /// event kernel resumes under any exact kernel, and the resumed run
    /// equals that kernel's own uninterrupted run.
    #[test]
    fn event_snapshot_resumes_under_any_exact_kernel(
        seed in 0u64..1_000_000,
        save_at in 500u64..20_000,
        resume_kernel_idx in 0usize..3,
    ) {
        let resume_kernel = [Kernel::Reference, Kernel::Event, Kernel::Parallel][resume_kernel_idx];
        let kind = ConfigKind::FigCacheFast;
        let insts = 8_000;
        let max = insts * 400;

        let mut warm = build(seed, 1, &kind, Kernel::Event, insts);
        let _ = warm.run(save_at);
        let mut bytes = Vec::new();
        snapshot::save_to_writer(&warm, &mut bytes).expect("snapshot save");

        let mut resumed = build(seed, 1, &kind, resume_kernel, insts);
        snapshot::restore_from_reader(&mut resumed, &mut bytes.as_slice())
            .expect("config hash ignores the kernel, so cross-kernel restore must succeed");
        let golden = build(seed, 1, &kind, resume_kernel, insts).run(max);
        prop_assert_eq!(
            &resumed.run(max),
            &golden,
            "cross-kernel resume diverged: seed={} save_at={} resume_kernel={:?}",
            seed,
            save_at,
            resume_kernel
        );
    }
}

/// A snapshot taken mid-relocation (engine jobs in flight, MSHRs busy)
/// restores the LISA-VILLA engine too, not just FIGCache.
#[test]
fn lisa_villa_resumes_bit_identically() {
    let kind = ConfigKind::LisaVilla;
    let (resumed, golden) = interrupted_vs_golden(42, 2, &kind, Kernel::Event, 8_000, 3_000);
    assert_eq!(resumed, golden);
}

/// Saving at cycle 0 (before any work) and at a cycle past run end are
/// both legal degenerate cases.
#[test]
fn degenerate_save_points_resume_cleanly() {
    let kind = ConfigKind::Base;
    for save_at in [0, u64::MAX] {
        let insts = 4_000;
        let max = insts * 400;
        let golden = build(7, 1, &kind, Kernel::Event, insts).run(max);
        let mut first = build(7, 1, &kind, Kernel::Event, insts);
        let _ = first.run(save_at.min(max));
        let mut bytes = Vec::new();
        snapshot::save_to_writer(&first, &mut bytes).expect("save");
        let mut resumed = build(7, 1, &kind, Kernel::Event, insts);
        snapshot::restore_from_reader(&mut resumed, &mut bytes.as_slice()).expect("restore");
        assert_eq!(resumed.run(max), golden, "save_at={save_at}");
    }
}
