//! Integration-test crate for the FIGARO workspace. The library is empty;
//! all content lives in `tests/` as cross-crate integration tests.
