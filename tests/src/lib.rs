//! Shared helpers for the FIGARO integration-test crate.
//!
//! The suite is tiered:
//!
//! * **Fast tier (default)** — deterministic [`Scale::Tiny`] smoke runs
//!   driven through the runner's parallel batch API. Runs on every
//!   `cargo test -q` and finishes in well under a minute.
//! * **Slow tier (opt-in)** — the paper-shape assertions at
//!   [`Scale::Small`]. These need cache warmup the tiny scale cannot
//!   provide and take a couple of minutes; they are `#[ignore]`d by
//!   default. Run them with:
//!
//!   ```text
//!   FIGARO_SLOW_TESTS=1 cargo test -q -- --include-ignored
//!   ```

use figaro_sim::Scale;

/// Marker attached to every slow test's `#[ignore]` reason.
pub const SLOW_HINT: &str =
    "slow paper-shape test: run with FIGARO_SLOW_TESTS=1 cargo test -- --include-ignored";

/// Whether the operator asked for the slow tier (`FIGARO_SLOW_TESTS=1`).
#[must_use]
pub fn slow_tests_enabled() -> bool {
    std::env::var("FIGARO_SLOW_TESTS").is_ok_and(|v| v == "1")
}

/// Guard for slow test bodies: returns `false` (after printing why) when
/// the slow tier was not requested, so a bare `--include-ignored` without
/// the env var still skips the multi-minute runs.
#[must_use]
pub fn slow_guard(test: &str) -> bool {
    if slow_tests_enabled() {
        return true;
    }
    eprintln!("{test}: skipped ({SLOW_HINT})");
    false
}

/// The fast tier's scale: always [`Scale::Tiny`] unless the operator
/// explicitly overrides `FIGARO_SCALE` (keeping the default run
/// deterministic and CI-fast).
#[must_use]
pub fn fast_tier_scale() -> Scale {
    Scale::from_env_or(Scale::Tiny)
}

/// The slow tier's scale: the bench default unless overridden.
#[must_use]
pub fn slow_tier_scale() -> Scale {
    Scale::from_env_or(Scale::Small)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tier_scales_disagree_by_default() {
        if std::env::var("FIGARO_SCALE").is_err() {
            assert_ne!(super::fast_tier_scale(), super::slow_tier_scale());
        }
    }
}
