//! Prints the deterministic `RunStats` digests of the default address
//! mapping + identity page mapper for every scheduler policy under both
//! kernels — the golden values hardcoded in `tests/tests/mapping.rs`
//! (the mapping subsystem must keep the default path bit-identical to
//! the PR-4 seed). Regenerate with
//! `cargo run --release --example mapping_golden_digest` whenever a PR
//! *intentionally* changes default-mapping behavior, and say so in the PR.

use figaro_sim::{ConfigKind, Kernel, MapKind, PageMapKind, SchedPolicyKind, System, SystemConfig};
use figaro_workloads::{generate_trace, profile_by_name, Trace};

fn main() {
    let policies = [
        SchedPolicyKind::FrFcfs,
        SchedPolicyKind::Fcfs,
        SchedPolicyKind::FrFcfsCap { cap: 4 },
        SchedPolicyKind::WriteDrain { high: 48, low: 8 },
    ];
    for kind in [ConfigKind::Base, ConfigKind::FigCacheFast] {
        for sched in policies {
            for kernel in [Kernel::Reference, Kernel::Event] {
                for cores in [1usize, 4] {
                    let apps = ["mcf", "lbm", "zeusmp", "libquantum"];
                    let traces: Vec<Trace> = (0..cores)
                        .map(|i| {
                            let p = profile_by_name(apps[i % apps.len()]).unwrap();
                            generate_trace(&p, 8_000, 7 + i as u64)
                        })
                        .collect();
                    let insts = 12_000u64;
                    // Pinned explicitly: SystemConfig::paper reads
                    // FIGARO_MAP / FIGARO_PAGEMAP, and a lingering env
                    // override must not skew regenerated goldens.
                    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) }
                        .with_sched(sched)
                        .with_mapping(MapKind::paper())
                        .with_page_map(PageMapKind::Identity);
                    let mut sys = System::new(cfg, traces, &vec![insts; cores]);
                    let s = sys.run(insts * 400);
                    println!(
                        "(\"{}\", \"{}\", \"{}\", {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}),",
                        kind.label(),
                        sched.label(),
                        kernel.label(),
                        cores,
                        s.cpu_cycles,
                        s.mc.row_hits,
                        s.mc.row_misses,
                        s.mc.row_conflicts,
                        s.mc.reads_served,
                        s.mc.writes_served,
                        s.mc.forwarded,
                        s.mc.read_latency_sum,
                        s.dram.relocs,
                        s.dram.refreshes,
                        s.cache.insertions,
                    );
                }
            }
        }
    }
}
