//! Quickstart: the FIGARO substrate and FIGCache in three acts.
//!
//! 1. **Functional**: reproduce the paper's Figure 4 — an unaligned
//!    one-column copy between subarrays through the global row buffer —
//!    with the timing engine checking every command and the data store
//!    checking every byte.
//! 2. **Engine**: watch FIGCache turn a miss into a relocation and the
//!    next access into an in-DRAM cache hit.
//! 3. **System**: run a small end-to-end simulation of `mcf` under `Base`
//!    and `FIGCache-Fast` and print the speedup.
//!
//! Run with `cargo run -p figaro-examples --bin quickstart --release`.

use figaro_core::{CacheEngine, FigCacheConfig, FigCacheEngine};
use figaro_dram::{BankAddr, DataStore, DramChannel, DramCommand, DramConfig, SubarrayLayout};
use figaro_sim::runner::Scale;
use figaro_sim::{ConfigKind, Runner};
use figaro_workloads::profile_by_name;

fn act1_functional_reloc() {
    println!("=== Act 1: FIGARO moves one column between subarrays (paper Fig. 4) ===");
    let config = DramConfig::ddr4_paper_default();
    let mut channel = DramChannel::new(&config);
    let mut data = DataStore::new(&config.geometry);
    let bank = BankAddr { rank: 0, bankgroup: 0, bank: 0 };
    let layout = config.layout;

    // Source row 7 lives in subarray 0; destination row sits in subarray 5.
    let src_row = 7;
    let dst_row = 5 * 512 + 9;
    let src: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    data.store_row(0, src_row, &src);

    // ACTIVATE the source row, wait for full restoration, then RELOC
    // column 3 into column 1 of the destination subarray's row buffer.
    let mut now = 0;
    channel.issue(bank, &DramCommand::Activate { row: src_row }, now);
    data.activate(&layout, 0, src_row);
    let reloc = DramCommand::Reloc { src_col: 3, dst_subarray: 5, dst_col: 1 };
    now = channel.earliest_issue(bank, &reloc, now);
    println!("RELOC legal {now} bus cycles after ACTIVATE (tRAS = full restoration)");
    channel.issue(bank, &reloc, now);
    data.reloc(&layout, 0, src_row, 3, 5, 1);

    // The merge activation commits the column into the destination row.
    let merge = DramCommand::ActivateMerge { row: dst_row };
    now = channel.earliest_issue(bank, &merge, now).max(now + 1);
    channel.issue(bank, &merge, now);
    data.activate_merge(&layout, 0, dst_row);

    let moved = data.block(0, dst_row, 1);
    assert_eq!(moved, src[3 * 64..4 * 64].to_vec(), "unaligned copy must move source column 3");
    let untouched = data.block(0, dst_row, 0);
    assert_eq!(untouched, vec![0u8; 64], "other destination columns stay untouched");
    println!("column 3 of row {src_row} now sits in column 1 of row {dst_row} — bytes verified\n");
}

fn act2_figcache_engine() {
    println!("=== Act 2: FIGCache — miss, relocate, hit ===");
    let dram = DramConfig {
        layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
        ..DramConfig::ddr4_paper_default()
    };
    let mut engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);

    let miss = engine.on_request(0, 100, 5, false, None, 0);
    println!(
        "first access to row 100: served from row {} (cache hit: {})",
        miss.row, miss.cache_hit
    );
    let mut job = engine.take_job(0, 0).expect("a relocation job was scheduled");
    let mut open = Some(100);
    while let Some(cmd) = job.peek(open, false) {
        println!("  relocation step: {cmd:?}");
        if let DramCommand::Activate { row } = cmd {
            open = Some(row);
        }
        job.on_issued(&cmd);
    }
    engine.on_job_complete(0, job.id, 100);
    let hit = engine.on_request(0, 100, 5, false, None, 200);
    println!(
        "second access: served from cache row {} (cache hit: {}) — a fast-subarray row\n",
        hit.row, hit.cache_hit
    );
    assert!(hit.cache_hit);
}

fn act3_end_to_end() {
    println!("=== Act 3: end-to-end speedup on mcf (tiny scale) ===");
    let runner = Runner::uncached(Scale::Tiny);
    let mcf = profile_by_name("mcf").expect("mcf profile exists");
    let base = runner.run_single(&mcf, ConfigKind::Base);
    let fig = runner.run_single(&mcf, ConfigKind::FigCacheFast);
    println!(
        "Base          : IPC {:.4}, row-buffer hit rate {:.1}%",
        base.ipc[0],
        base.row_hit_rate * 100.0
    );
    println!(
        "FIGCache-Fast : IPC {:.4}, row-buffer hit rate {:.1}%, cache hit rate {:.1}%, {} RELOCs",
        fig.ipc[0],
        fig.row_hit_rate * 100.0,
        fig.cache_hit_rate * 100.0,
        fig.relocs
    );
    println!("speedup       : {:.3}x", fig.ipc[0] / base.ipc[0]);
}

fn main() {
    act1_functional_reloc();
    act2_figcache_engine();
    act3_end_to_end();
}
