//! Policy explorer: how FIGCache's design knobs move performance.
//!
//! Sweeps the three Section 9 knobs — replacement policy, row-segment
//! size, and insertion threshold — on one memory-intensive application and
//! prints speedups over `Base`. A miniature of the Fig. 13/14/15 benches,
//! built directly on the public `SystemConfig` sweep constructors.
//!
//! Run with `cargo run -p figaro-examples --bin policy_explorer --release`.

use figaro_core::ReplacementPolicy;
use figaro_sim::runner::Scale;
use figaro_sim::{ConfigKind, Runner, SystemConfig};
use figaro_workloads::profile_by_name;

fn main() {
    let runner = Runner::uncached(Scale::Tiny);
    let app = profile_by_name("GemsFDTD").expect("profile exists");
    let base = runner.run_single(&app, ConfigKind::Base).ipc[0];
    println!("GemsFDTD, single core, speedup over Base (tiny scale)\n");

    println!("replacement policies (paper Fig. 14):");
    for policy in [
        ReplacementPolicy::Random,
        ReplacementPolicy::Lru,
        ReplacementPolicy::SegmentBenefit,
        ReplacementPolicy::RowBenefit,
    ] {
        let cfg = SystemConfig::fig14_point(1, policy);
        let s = runner.run_single(&app, cfg.kind).ipc[0] / base;
        println!("  {policy:<16?} {s:>7.3}x");
    }

    println!("\nrow-segment sizes (paper Fig. 13):");
    for (blocks, label) in [(8u32, "512B"), (16, "1KB"), (32, "2KB"), (64, "4KB"), (128, "8KB")] {
        let cfg = SystemConfig::fig13_point(1, blocks);
        let s = runner.run_single(&app, cfg.kind).ipc[0] / base;
        println!("  {label:<6} {s:>7.3}x");
    }

    println!("\ninsertion thresholds (paper Fig. 15):");
    for threshold in [1u32, 2, 4, 8] {
        let cfg = SystemConfig::fig15_point(1, threshold);
        let s = runner.run_single(&app, cfg.kind).ipc[0] / base;
        println!("  threshold {threshold} {s:>7.3}x");
    }

    println!("\npaper: RowBenefit ties or wins; 1 kB segments peak; threshold 1 is best.");
}
