//! Multicore interference: the paper's core multiprogrammed scenario.
//!
//! Eight applications share four DDR4 channels; their interleaved request
//! streams destroy each other's row-buffer locality (bank conflicts), and
//! FIGCache recovers it by gathering each bank's hot row segments into a
//! few in-DRAM cache rows. This example runs one mix from each intensity
//! category under `Base` and `FIGCache-Fast` and reports weighted speedup,
//! row-buffer hit rate and in-DRAM cache behaviour.
//!
//! Run with
//! `cargo run -p figaro-examples --bin multicore_interference --release`.

use figaro_sim::metrics::weighted_speedup;
use figaro_sim::runner::Scale;
use figaro_sim::{ConfigKind, Runner};
use figaro_workloads::{eight_core_mixes, MixCategory};

fn main() {
    let runner = Runner::uncached(Scale::Tiny);
    let mixes = eight_core_mixes();
    println!("eight-core mixes, Base vs FIGCache-Fast (tiny scale)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "mix", "WS(Base)", "WS(FIG)", "speedup", "rowhit B->F", "cache hit"
    );
    for category in MixCategory::all() {
        let mix = mixes.iter().find(|m| m.category == category).expect("category populated");
        let alone: Vec<f64> = mix.apps.iter().map(|p| runner.alone_ipc(p)).collect();
        let base = runner.run_mix(mix, ConfigKind::Base);
        let fig = runner.run_mix(mix, ConfigKind::FigCacheFast);
        let ws_base = weighted_speedup(&base.ipc, &alone);
        let ws_fig = weighted_speedup(&fig.ipc, &alone);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>9.3}x {:>5.1}%->{:>5.1}% {:>11.1}%",
            mix.name,
            ws_base,
            ws_fig,
            ws_fig / ws_base,
            base.row_hit_rate * 100.0,
            fig.row_hit_rate * 100.0,
            fig.cache_hit_rate * 100.0,
        );
    }
    println!(
        "\nThe speedup grows with the memory-intensive fraction — interference-\n\
         induced bank conflicts are exactly what segment co-location removes\n\
         (paper Fig. 8: +3.9% at 25% intensity up to +27.1% at 100%)."
    );
}
