//! RowHammer mitigation (paper Section 6).
//!
//! A double-sided hammer alternates reads between two rows of one bank,
//! forcing the baseline to open and close the aggressor rows at maximum
//! rate — which is what flips bits in their physical neighbours. With
//! FIGCache, the two hot segments are relocated into a single in-DRAM
//! cache row after the first misses; subsequent accesses stop activating
//! the aggressor rows entirely.
//!
//! Run with
//! `cargo run -p figaro-examples --bin rowhammer_mitigation --release`.

use figaro_core::{FigCacheConfig, FigCacheEngine, NullEngine};
use figaro_dram::{DramConfig, PhysAddr, SubarrayLayout};
use figaro_memctrl::{McConfig, MemoryController, Request};

/// Feeds `rounds` alternating-row reads into `mc` and reports
/// (max per-row activations within the window, total activations).
fn hammer(mut mc: MemoryController, rounds: u64) -> (u32, u64) {
    let row_stride = 128 * 64 * 16u64; // next row of the same bank
    let (mut now, mut id, mut issued) = (0u64, 0u64, 0u64);
    let mut scratch = Vec::new();
    while issued < rounds * 2 {
        if mc.can_accept(false) {
            let aggressor = issued % 2;
            let col = (issued / 2) % 16; // fresh block each time (clflush attacker)
            mc.enqueue(
                Request {
                    id,
                    addr: PhysAddr(aggressor * row_stride + col * 64),
                    is_write: false,
                    core: 0,
                    arrival: now,
                },
                now,
            );
            id += 1;
            issued += 1;
        }
        mc.tick(now);
        scratch.clear();
        mc.drain_completions_into(&mut scratch);
        now += 1;
    }
    while !mc.is_idle() && now < 10_000_000 {
        mc.tick(now);
        scratch.clear();
        mc.drain_completions_into(&mut scratch);
        now += 1;
    }
    let monitor = mc.activation_monitor().expect("monitor enabled");
    (monitor.max_acts_per_window(), monitor.total_acts())
}

fn main() {
    let rounds = 30_000u64;
    let mc_cfg = McConfig {
        enable_refresh: false,
        activation_window: Some(2_000_000),
        ..McConfig::default()
    };

    let base = MemoryController::new(
        &DramConfig::ddr4_paper_default(),
        mc_cfg,
        0,
        Box::new(NullEngine::new()),
    );
    let (base_max, base_total) = hammer(base, rounds);

    let fig_dram = DramConfig {
        layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
        ..DramConfig::ddr4_paper_default()
    };
    let engine = FigCacheEngine::new(&fig_dram, &FigCacheConfig::paper_fast(), 16);
    let fig = MemoryController::new(&fig_dram, mc_cfg, 0, Box::new(engine));
    let (fig_max, fig_total) = hammer(fig, rounds);

    println!("double-sided hammer, {} reads alternating two rows of one bank\n", rounds * 2);
    println!("Base     : hottest row sees {base_max:>6} ACTs in the window (total {base_total})");
    println!("FIGCache : hottest row sees {fig_max:>6} ACTs in the window (total {fig_total})");
    println!(
        "\nactivation-pressure reduction: {:.0}x — below typical RowHammer\n\
         thresholds the attack no longer reaches its victim rows\n\
         (paper Sec. 6: co-locating hammered segments in one cache row\n\
         eliminates the repeated open/close cycling).",
        f64::from(base_max) / f64::from(fig_max.max(1))
    );
    assert!(fig_max < base_max / 4, "FIGCache must collapse the activation storm");
}
