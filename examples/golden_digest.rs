//! Prints the deterministic `RunStats` digests for the Figure 7/8
//! config set under both kernels — the golden values hardcoded in
//! `tests/tests/sched_policies.rs` (FR-FCFS bit-identity against the
//! pre-refactor seed). Regenerate with
//! `cargo run --release --example golden_digest` whenever a PR
//! *intentionally* changes controller behavior, and say so in the PR.

use figaro_sim::{ConfigKind, Kernel, MapKind, PageMapKind, System, SystemConfig};
use figaro_workloads::{generate_trace, profile_by_name, Trace};

/// Pins the placement defaults explicitly: `SystemConfig::paper` reads
/// `FIGARO_MAP` / `FIGARO_PAGEMAP`, and a lingering env override must
/// not skew regenerated goldens.
fn pinned(cfg: SystemConfig) -> SystemConfig {
    cfg.with_mapping(MapKind::paper()).with_page_map(PageMapKind::Identity)
}

fn main() {
    // Longer single-core mcf runs that actually drain writes.
    for kind in [ConfigKind::Base, ConfigKind::FigCacheFast] {
        for kernel in [Kernel::Reference, Kernel::Event] {
            let p = profile_by_name("mcf").unwrap();
            let trace = generate_trace(&p, 30_000, 42);
            let cfg = pinned(SystemConfig { kernel, ..SystemConfig::paper(1, kind.clone()) });
            let mut sys = System::new(cfg, vec![trace], &[60_000]);
            let s = sys.run(60_000 * 400);
            println!(
                "(\"{}w\", \"{}\", 1, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}),",
                kind.label(),
                kernel.label(),
                s.cpu_cycles,
                s.mc.row_hits,
                s.mc.row_misses,
                s.mc.row_conflicts,
                s.mc.reads_served,
                s.mc.writes_served,
                s.mc.forwarded,
                s.mc.read_latency_sum,
                s.dram.relocs,
                s.dram.refreshes,
                s.cache.insertions,
            );
        }
    }
    let mut kinds = vec![ConfigKind::Base];
    kinds.extend(ConfigKind::figure78_set());
    for kind in &kinds {
        for kernel in [Kernel::Reference, Kernel::Event] {
            for cores in [1usize, 4] {
                let apps = ["mcf", "lbm", "zeusmp", "libquantum"];
                let traces: Vec<Trace> = (0..cores)
                    .map(|i| {
                        let p = profile_by_name(apps[i % apps.len()]).unwrap();
                        generate_trace(&p, 8_000, 7 + i as u64)
                    })
                    .collect();
                let insts = 12_000u64;
                let cfg =
                    pinned(SystemConfig { kernel, ..SystemConfig::paper(cores, kind.clone()) });
                let mut sys = System::new(cfg, traces, &vec![insts; cores]);
                let s = sys.run(insts * 400);
                println!(
                    "(\"{}\", \"{}\", {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}),",
                    kind.label(),
                    kernel.label(),
                    cores,
                    s.cpu_cycles,
                    s.mc.row_hits,
                    s.mc.row_misses,
                    s.mc.row_conflicts,
                    s.mc.reads_served,
                    s.mc.writes_served,
                    s.mc.forwarded,
                    s.mc.read_latency_sum,
                    s.dram.relocs,
                    s.dram.refreshes,
                    s.cache.insertions,
                );
            }
        }
    }
}
