//! Offline API-subset shim for the `proptest` crate.
//!
//! Supports the property-test shapes used in this workspace:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     #[test]
//!     fn prop(xs in proptest::collection::vec((0u8..4, any::<bool>()), 1..200), k in 0.1f64..10.0) {
//!         prop_assert!(...);
//!         prop_assert_eq!(a, b);
//!     }
//! }
//! ```
//!
//! Strategies: integer/float ranges (half-open and inclusive),
//! `any::<bool|u8|u16|u32|u64|usize>()`, tuples up to arity 4, and
//! `collection::vec(strategy, len_range)`. Case generation is seeded
//! from the test function's name, so runs are deterministic and
//! failures reproduce. There is **no shrinking**: a failing case panics
//! with its case index (and the standard assert message); re-running
//! reaches the identical case.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for "any value of `T`" — see [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The `any::<T>()` entry point.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_uniform_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_uniform_int!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// Strategy producing `Vec`s — see [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// uniformly from `len` (half-open, like upstream's common usage).
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-test generator: seeded from the test's name
    /// (FNV-1a), so every run replays the same cases.
    #[must_use]
    pub fn rng_for_test(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts `cond`, reporting the failing property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts `left == right`, reporting the failing property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts `left != right`, reporting the failing property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// The `proptest! { ... }` block: expands each contained `fn` into a
/// `#[test]` that replays `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest shim: property `{}` failed at deterministic case {}/{}",
                        stringify!($name), __case + 1, __cfg.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their strategies.
        #[test]
        fn strategies_in_bounds(
            xs in crate::collection::vec((0u8..4, 1u32..32, any::<bool>()), 1..50),
            k in 0.5f64..2.0,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for (a, b, _) in xs {
                prop_assert!(a < 4);
                prop_assert!((1..32).contains(&b));
            }
            prop_assert!((0.5..2.0).contains(&k));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..100, 5..6);
        let mut r1 = crate::test_runner::rng_for_test("t");
        let mut r2 = crate::test_runner::rng_for_test("t");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
