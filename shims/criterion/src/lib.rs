//! Offline API-subset shim for the `criterion` crate.
//!
//! Provides just enough of criterion's surface for the `micro` bench
//! target: [`Criterion`] with `bench_function`, [`Bencher`] with
//! `iter`/`iter_batched`, [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros (both the positional and the
//! `name =`/`config =`/`targets =` forms). Instead of criterion's
//! statistics engine it reports the min/mean/max of wall-clock sample
//! times — honest numbers, no outlier analysis.
//!
//! Bench binaries built from this shim also understand being launched by
//! `cargo test` (any `--test`-style flag in `argv`): they exit
//! immediately so test runs stay fast.

use std::time::{Duration, Instant};

/// How per-iteration setup output is batched in `iter_batched`.
/// The shim runs one setup per timed call regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times the closure a benchmark hands it.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Benchmarks `routine` on fresh input from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run untimed until the warm-up budget elapses.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        // Calibrate iterations per sample so one sample is ≥ ~100 µs.
        let mut iters_per_sample = 1u64;
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            let once = t.elapsed();
            if once >= Duration::from_micros(100) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                let input = setup();
                std::hint::black_box(routine(input));
            }
            if t.elapsed() >= Duration::from_micros(100) {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self.samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().copied().fold(0.0_f64, f64::max);
        let fmt = |ns: f64| {
            if ns < 1_000.0 {
                format!("{ns:.1} ns")
            } else if ns < 1_000_000.0 {
                format!("{:.2} µs", ns / 1_000.0)
            } else {
                format!("{:.2} ms", ns / 1_000_000.0)
            }
        };
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples)",
            fmt(min),
            fmt(mean),
            fmt(max),
            self.samples_ns.len()
        );
    }
}

/// `true` when the binary was launched by `cargo test` rather than
/// `cargo bench` (cargo passes `--test` and friends to bench targets).
#[must_use]
pub fn launched_as_test() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list" || a == "--format")
}

/// Declares a benchmark group function, positional or `name/config/targets`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::launched_as_test() {
                return;
            }
            $($group();)+
        }
    };
}
