//! Offline API-subset shim for the `rand` crate.
//!
//! The workspace builds without registry access, so this crate provides
//! the (small) slice of `rand` 0.8's API the simulator uses: the [`Rng`]
//! trait with `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64: deterministic and
//! platform-independent (which the seeded experiments require), but a
//! different stream from upstream `rand`'s ChaCha-based `StdRng`.

/// A source of randomness, plus the distribution helpers the simulator
/// uses. Matches the `rand` 0.8 call syntax for the methods provided.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive; panics on an
    /// empty range, like upstream).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of `% span` would also be fine for a
                // simulator but this costs nothing extra.
                let wide = (rng.next_u64() as u128) * span;
                self.start + (wide >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (e as u128) - (s as u128) + 1;
                let wide = (rng.next_u64() as u128) * span;
                s + (wide >> 64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "cannot sample empty range");
        s + unit_f64(rng.next_u64()) * (e - s)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words (checkpoint serialization).
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`Self::state`] words. The stream
        /// continues exactly where the saved generator left off.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as xoshiro's authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice shuffling (the `shuffle` subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
