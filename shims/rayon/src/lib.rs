//! Offline API-subset shim for the `rayon` crate.
//!
//! Implements the `par_iter`/`into_par_iter` → `map` → `collect` shape
//! on `std::thread::scope` with an atomic work queue (dynamic load
//! balancing, like rayon). Results always come back in input order, so
//! parallel runs are bit-identical to serial ones — a property the
//! simulator's result cache relies on.
//!
//! Worker count is `available_parallelism`, clamped by the
//! `RAYON_NUM_THREADS` environment variable when set (same knob as
//! upstream rayon).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Worker-thread count: `RAYON_NUM_THREADS` if set, else the machine's
/// available parallelism, always at least 1.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

/// Runs `f` over `items` on the worker pool, returning results in input
/// order. The core primitive every adapter lowers to.
fn parallel_map_ordered<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let out: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work queue lock never poisoned")
                    .take()
                    .expect("each slot taken exactly once");
                let r = f(item);
                *out[i].lock().expect("result lock never poisoned") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("result lock never poisoned").expect("every index computed"))
        .collect()
}

/// A to-be-parallelised sequence of items.
#[derive(Debug)]
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps `f` over the items in parallel (lazily: work happens at
    /// [`Map::collect`] / [`Map::for_each`]).
    pub fn map<T, F>(self, f: F) -> Map<I, T, F>
    where
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        Map { items: self.items, f, _out: std::marker::PhantomData }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        parallel_map_ordered(self.items, f);
    }
}

/// A mapped parallel iterator.
#[derive(Debug)]
pub struct Map<I, T, F> {
    items: Vec<I>,
    f: F,
    _out: std::marker::PhantomData<fn() -> T>,
}

impl<I: Send, T: Send, F: Fn(I) -> T + Sync> Map<I, T, F> {
    /// Executes the parallel map and collects results in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        parallel_map_ordered(self.items, self.f).into_iter().collect()
    }

    /// Executes the parallel map for its effects.
    pub fn for_each(self) {
        parallel_map_ordered(self.items, self.f);
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Builds the parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    //! The usual `use rayon::prelude::*;` imports.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

// --- Persistent worker pool (shim-only extension) ---------------------
//
// Upstream rayon amortizes thread startup in its global pool; the scoped
// threads `parallel_map_ordered` spawns per call are fine for
// coarse-grained batch runs but far too slow for a caller that fans out
// thousands of small barrier-synchronized jobs (the sharded simulation
// kernel dispatches one job per executed bus-cycle boundary). This pool
// keeps its workers alive across jobs: publishing a job is one atomic
// epoch bump, and workers spin briefly before parking so an idle pool
// costs no CPU.

/// The job workers run: called once per participant with its index.
type Task = dyn Fn(usize) + Sync;

/// State shared between the coordinator and the workers.
struct PoolShared {
    /// The published task, valid while `pending > 0`.
    ///
    /// Written only by the coordinator while no worker can read it
    /// (between jobs, after `pending` drained to zero) and read by
    /// workers only after the `Acquire` load of the epoch whose
    /// `Release` store happened after the write.
    job: UnsafeCell<Option<*const Task>>,
    /// Bumped (`Release`) to publish the job in `job`.
    epoch: AtomicUsize,
    /// Workers that have not yet finished the current job.
    pending: AtomicUsize,
    /// Set (with an epoch bump) to shut the workers down.
    shutdown: AtomicBool,
    /// Whether any worker's task panicked during the current job.
    panicked: AtomicBool,
}

// SAFETY: the raw task pointer in `job` is only dereferenced under the
// epoch/pending protocol described on the field; all other fields are
// atomics.
unsafe impl Sync for PoolShared {}
// SAFETY: as above — the pointer is never used outside `run`'s scope.
unsafe impl Send for PoolShared {}

/// A persistent pool for repeated barrier-synchronized fan-out.
///
/// [`WorkerPool::run`] hands the same closure to every participant
/// (`threads - 1` pool workers plus the calling thread, each with a
/// distinct index in `0..threads`) and returns when all of them finish —
/// one barrier per call, no thread spawns. Workers spin briefly waiting
/// for the next job, then park with a timeout, so a pool between jobs
/// costs (almost) no CPU; this keeps per-job overhead in the sub-
/// microsecond range on idle machines while staying fair on
/// oversubscribed ones.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish()
    }
}

impl WorkerPool {
    /// Spin iterations before a waiting worker parks.
    const SPINS: u32 = 4_096;

    /// Spawns a pool with `threads` total participants (the calling
    /// thread counts as one, so `threads - 1` OS threads are created;
    /// `threads <= 1` spawns none and [`WorkerPool::run`] degenerates to
    /// a plain call).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            epoch: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        });
        let handles = (0..threads - 1)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared, idx))
            })
            .collect();
        Self { shared, handles, threads }
    }

    /// Total participants (pool workers + the calling thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn worker_loop(shared: &PoolShared, index: usize) {
        let mut seen = 0usize;
        loop {
            // Wait for a new epoch: spin first (a busy coordinator
            // publishes the next job within microseconds), then park
            // with a timeout (the unpark in `run` is best-effort).
            let mut spins = 0u32;
            loop {
                let e = shared.epoch.load(Ordering::Acquire);
                if e != seen {
                    seen = e;
                    break;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if spins < Self::SPINS {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::park_timeout(std::time::Duration::from_micros(100));
                }
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            // SAFETY: the epoch `Acquire` above synchronizes with the
            // `Release` bump in `run`, which stored the pointer first;
            // the coordinator blocks until `pending` drains, so the
            // pointee outlives this call.
            let task = unsafe { (*shared.job.get()).expect("epoch bump published a job") };
            // SAFETY: as above — valid for the duration of `run`.
            let task = unsafe { &*task };
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(index))).is_err() {
                shared.panicked.store(true, Ordering::Relaxed);
            }
            shared.pending.fetch_sub(1, Ordering::Release);
        }
    }

    /// Runs `task(i)` once for every participant index `i` in
    /// `0..threads()`, on `threads() - 1` pool workers plus the calling
    /// thread, and returns when all calls finish. The task partitions
    /// its work by index (e.g. item `j` goes to index `j % threads()`).
    ///
    /// # Panics
    ///
    /// Panics if any participant's `task` call panicked.
    pub fn run<F: Fn(usize) + Sync>(&self, task: &F) {
        if self.threads <= 1 {
            task(0);
            return;
        }
        let shared = &*self.shared;
        debug_assert_eq!(shared.pending.load(Ordering::Relaxed), 0);
        let wide: *const (dyn Fn(usize) + Sync) = std::ptr::from_ref(task);
        // SAFETY: lifetime erasure only — the pointer never outlives
        // this call (`run` blocks until every worker finished with it).
        let wide: *const Task = unsafe { std::mem::transmute(wide) };
        // SAFETY: no worker reads `job` between jobs (`pending == 0`
        // and the epoch is unchanged); the write below happens-before
        // the `Release` epoch bump that lets workers load it.
        unsafe { *shared.job.get() = Some(wide) };
        shared.pending.store(self.threads - 1, Ordering::Relaxed);
        shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        // The coordinator is participant `threads - 1`.
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            task(self.threads - 1);
        }));
        // Wait for the workers (Acquire pairs with their Release
        // decrement, publishing their writes to shared data).
        let mut spins = 0u32;
        while shared.pending.load(Ordering::Acquire) != 0 {
            if spins < Self::SPINS {
                spins += 1;
                std::hint::spin_loop();
            } else {
                // Oversubscribed machine: let the workers run.
                std::thread::yield_now();
            }
        }
        // SAFETY: all workers are done with the pointer.
        unsafe { *shared.job.get() = None };
        if shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("worker pool task panicked");
        }
        if let Err(p) = caller {
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // The epoch bump wakes spinners; unpark wakes parked workers.
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect::<Vec<_>>();
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let xs = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect::<Vec<_>>();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0..50usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 49 * 50 / 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect::<Vec<_>>();
        assert!(v.is_empty());
    }

    #[test]
    fn worker_pool_runs_every_index_per_job() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = crate::WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let sum = AtomicU64::new(0);
        for round in 0..200u64 {
            pool.run(&|i| {
                sum.fetch_add(round * 4 + i as u64, Ordering::Relaxed);
            });
        }
        // Each round adds 4*round + (0+1+2+3).
        let expect: u64 = (0..200u64).map(|r| 4 * r * 4 + 6).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn worker_pool_single_thread_degenerates_to_a_call() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = crate::WorkerPool::new(1);
        let hits = AtomicU64::new(0);
        pool.run(&|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_pool_disjoint_mutation_by_index() {
        // The intended usage shape: each participant owns the slice
        // elements congruent to its index.
        struct Cells(*mut u64, usize);
        unsafe impl Sync for Cells {}
        let threads = 3;
        let pool = crate::WorkerPool::new(threads);
        let n = 64;
        let mut data = vec![0u64; n];
        let cells = Cells(data.as_mut_ptr(), n);
        let cells = &cells; // capture the Sync wrapper, not its raw fields
        for _ in 0..50 {
            pool.run(&|idx| {
                let mut j = idx;
                while j < cells.1 {
                    // SAFETY: index classes are disjoint across
                    // participants.
                    unsafe { *cells.0.add(j) += j as u64 };
                    j += threads;
                }
            });
        }
        drop(pool);
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, 50 * j as u64);
        }
    }
}
