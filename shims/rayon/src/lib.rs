//! Offline API-subset shim for the `rayon` crate.
//!
//! Implements the `par_iter`/`into_par_iter` → `map` → `collect` shape
//! on `std::thread::scope` with an atomic work queue (dynamic load
//! balancing, like rayon). Results always come back in input order, so
//! parallel runs are bit-identical to serial ones — a property the
//! simulator's result cache relies on.
//!
//! Worker count is `available_parallelism`, clamped by the
//! `RAYON_NUM_THREADS` environment variable when set (same knob as
//! upstream rayon).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count: `RAYON_NUM_THREADS` if set, else the machine's
/// available parallelism, always at least 1.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

/// Runs `f` over `items` on the worker pool, returning results in input
/// order. The core primitive every adapter lowers to.
fn parallel_map_ordered<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let out: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work queue lock never poisoned")
                    .take()
                    .expect("each slot taken exactly once");
                let r = f(item);
                *out[i].lock().expect("result lock never poisoned") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("result lock never poisoned").expect("every index computed"))
        .collect()
}

/// A to-be-parallelised sequence of items.
#[derive(Debug)]
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps `f` over the items in parallel (lazily: work happens at
    /// [`Map::collect`] / [`Map::for_each`]).
    pub fn map<T, F>(self, f: F) -> Map<I, T, F>
    where
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        Map { items: self.items, f, _out: std::marker::PhantomData }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        parallel_map_ordered(self.items, f);
    }
}

/// A mapped parallel iterator.
#[derive(Debug)]
pub struct Map<I, T, F> {
    items: Vec<I>,
    f: F,
    _out: std::marker::PhantomData<fn() -> T>,
}

impl<I: Send, T: Send, F: Fn(I) -> T + Sync> Map<I, T, F> {
    /// Executes the parallel map and collects results in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        parallel_map_ordered(self.items, self.f).into_iter().collect()
    }

    /// Executes the parallel map for its effects.
    pub fn for_each(self) {
        parallel_map_ordered(self.items, self.f);
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Builds the parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    //! The usual `use rayon::prelude::*;` imports.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect::<Vec<_>>();
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let xs = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect::<Vec<_>>();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0..50usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 49 * 50 / 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect::<Vec<_>>();
        assert!(v.is_empty());
    }
}
